"""Deterministic fault injection for the microblog API.

Real crawls against a live platform hit transient 5xx errors, timeouts,
truncated transfers and duplicated pages — the operational frictions that
motivate "Walk, Not Wait" (Nazi et al.) and that the paper's estimators
must survive without losing their statistical guarantees.
:class:`FaultInjectingClient` wraps any :class:`MicroblogAPI` and injects
those faults from a seeded :class:`FaultPlan`.

The injector is built so that a resilient caller can heal *every* fault
and end up bit-identical to a fault-free run:

* Fault draws are keyed by ``(plan seed, request key, attempt number)``
  rather than by a shared stream, so the outcome of a request does not
  depend on which other requests happened before it.  Per-shard clients
  in the parallel engine therefore inject the *same* faults for the same
  request regardless of worker count or interleaving.
* The clean inner response for each logical request is fetched (and its
  query cost charged) exactly **once**, no matter how many injected
  failures precede the successful attempt — so the budgeted query
  trajectory of a healed run matches the fault-free run exactly.
* ``max_consecutive_faults`` caps the number of back-to-back failures
  per request, guaranteeing a retrying caller with a larger attempt
  budget always eventually receives the clean response.

Fault kinds, in draw order:

``transient``
    The request fails outright (:class:`TransientAPIError`), e.g. a 503.
``timeout``
    The request times out (:class:`APITimeoutError`).
``truncate``
    The transfer is cut short: :class:`TruncatedResponseError` carrying
    the delivered prefix in ``.partial``.  The clean response *was*
    produced server-side, so this attempt is the one that pays the
    normal query cost.
``duplicate``
    The request *succeeds* but the page contains duplicated entries
    (retransmitted rows) — corruption a resilient caller must detect
    and heal by deduplication.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Dict, Optional, Sequence, Tuple

from repro.api.interface import MicroblogAPI, SearchHit, TimelineView
from repro.errors import (
    APITimeoutError,
    ReproError,
    TransientAPIError,
    TruncatedResponseError,
)
from repro.obs import NULL_OBS, Observability

TRANSIENT = "transient"
TIMEOUT = "timeout"
TRUNCATE = "truncate"
DUPLICATE = "duplicate"

RequestKey = Tuple[str, object, object]


@dataclass(frozen=True)
class FaultPlan:
    """Seeded fault configuration for a :class:`FaultInjectingClient`.

    Rates are independent probabilities partitioning a single uniform
    draw per attempt, so their sum must stay at or below 1.  A plan is a
    frozen value object: the same plan injected into two clients (e.g.
    per-shard rebuilds in the parallel engine) produces the same faults
    for the same requests.
    """

    seed: int = 0
    transient_rate: float = 0.0
    timeout_rate: float = 0.0
    truncate_rate: float = 0.0
    duplicate_rate: float = 0.0
    max_consecutive_faults: int = 6
    """Hard cap on back-to-back injected failures for one request key.
    Keeping this *below* the resilient client's attempt budget is what
    makes every fault healable — and healed runs bit-identical."""

    def __post_init__(self) -> None:
        for name in ("transient_rate", "timeout_rate", "truncate_rate", "duplicate_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ReproError(f"{name} must be in [0, 1], got {rate}")
        if self.fault_rate + self.duplicate_rate > 1.0:
            raise ReproError("fault rates must sum to at most 1")
        if self.max_consecutive_faults < 1:
            raise ReproError("max_consecutive_faults must be positive")

    @property
    def fault_rate(self) -> float:
        """Probability an attempt fails outright (excludes duplicates,
        which corrupt a successful response instead of failing it)."""
        return self.transient_rate + self.timeout_rate + self.truncate_rate

    @property
    def active(self) -> bool:
        return self.fault_rate > 0.0 or self.duplicate_rate > 0.0


FAULT_PROFILES: Dict[str, FaultPlan] = {
    "none": FaultPlan(),
    "flaky": FaultPlan(transient_rate=0.05, timeout_rate=0.02, duplicate_rate=0.02),
    "unstable": FaultPlan(
        transient_rate=0.10, timeout_rate=0.05, truncate_rate=0.03, duplicate_rate=0.03
    ),
    "hostile": FaultPlan(
        transient_rate=0.20, timeout_rate=0.10, truncate_rate=0.05, duplicate_rate=0.05
    ),
}
"""Named plans for the CLI ``--fault-profile`` flag and the chaos suite.
``hostile`` is the acceptance-criteria profile: 20% transient errors on
top of timeouts, truncation and duplication."""


def _duplicate_sequence(items: Sequence) -> tuple:
    """Corrupt a page by retransmitting one row (sortedness preserved)."""
    if not items:
        return tuple(items)
    mid = len(items) // 2
    out = list(items)
    out.insert(mid, out[mid])
    return tuple(out)


class FaultInjectingClient(MicroblogAPI):
    """Injects seeded faults between a caller and an inner API client.

    Thread-compatible in the same sense as the inner simulated client:
    per-shard instances in the parallel engine are single-threaded, and
    the shared-client path (pilot walks) serialises through the outer
    :class:`~repro.api.client.CachingClient` lock.
    """

    def __init__(
        self, inner: MicroblogAPI, plan: FaultPlan, obs: Optional["Observability"] = None
    ) -> None:
        self.inner = inner
        self.plan = plan
        self.obs = obs if obs is not None else NULL_OBS
        self._attempts: Dict[RequestKey, int] = {}
        self._consecutive: Dict[RequestKey, int] = {}
        self._clean: Dict[RequestKey, object] = {}
        self.injected: Dict[str, int] = {TRANSIENT: 0, TIMEOUT: 0, TRUNCATE: 0, DUPLICATE: 0}

    def _note_injected(self, fault: str) -> None:
        if self.obs.metrics is not None:
            self.obs.metrics.counter("faults.injected", fault=fault).inc()

    # ------------------------------------------------------------------
    # fault machinery
    # ------------------------------------------------------------------
    def _draw(self, key: RequestKey, attempt: int) -> Optional[str]:
        """The fault (or None) injected for *attempt* of request *key*.

        The draw is a pure function of (plan seed, key, attempt): no
        shared RNG stream, so request interleaving across walkers,
        shards or workers cannot change any individual outcome.
        """
        if self._consecutive.get(key, 0) >= self.plan.max_consecutive_faults:
            return None
        plan = self.plan
        u = random.Random(f"{plan.seed}:{key!r}:{attempt}").random()
        edge = plan.transient_rate
        if u < edge:
            return TRANSIENT
        edge += plan.timeout_rate
        if u < edge:
            return TIMEOUT
        edge += plan.truncate_rate
        if u < edge:
            return TRUNCATE
        edge += plan.duplicate_rate
        if u < edge:
            return DUPLICATE
        return None

    def _fetch_clean(self, key: RequestKey, fetch):
        """The inner response for *key*, charged exactly once.

        Memoised so that a request which fails (truncates) after the
        server produced the page, then succeeds on retry, pays its
        normal query cost a single time — keeping the budget trajectory
        identical to a fault-free run.
        """
        if key not in self._clean:
            self._clean[key] = fetch()
        return self._clean[key]

    def _attempt(self, key: RequestKey, fetch):
        attempt = self._attempts.get(key, 0)
        self._attempts[key] = attempt + 1
        fault = self._draw(key, attempt)
        if fault in (TRANSIENT, TIMEOUT):
            self._consecutive[key] = self._consecutive.get(key, 0) + 1
            self.injected[fault] += 1
            self._note_injected(fault)
            if fault == TRANSIENT:
                raise TransientAPIError(f"injected transient failure for {key}")
            raise APITimeoutError(f"injected timeout for {key}")
        # Truncation and success both need the clean response (the server
        # did the work; only delivery differs).
        response = self._fetch_clean(key, fetch)
        if fault == TRUNCATE:
            self._consecutive[key] = self._consecutive.get(key, 0) + 1
            self.injected[TRUNCATE] += 1
            self._note_injected(TRUNCATE)
            raise TruncatedResponseError(
                f"injected truncated transfer for {key}",
                partial=self._truncate(response),
            )
        self._consecutive[key] = 0
        if fault == DUPLICATE:
            self.injected[DUPLICATE] += 1
            self._note_injected(DUPLICATE)
            return self._corrupt(response)
        return response

    @staticmethod
    def _truncate(response):
        """The delivered prefix of a cut-short transfer."""
        if isinstance(response, TimelineView):
            cut = len(response.posts) // 2
            return replace(response, posts=response.posts[:cut], truncated=True)
        cut = len(response) // 2
        return tuple(response[:cut])

    @staticmethod
    def _corrupt(response):
        """A successful page with one retransmitted row."""
        if isinstance(response, TimelineView):
            return replace(response, posts=_duplicate_sequence(response.posts))
        return _duplicate_sequence(response)

    # ------------------------------------------------------------------
    # MicroblogAPI
    # ------------------------------------------------------------------
    def search(self, keyword: str, max_results: Optional[int] = None) -> Sequence[SearchHit]:
        key: RequestKey = ("search", keyword.lower(), max_results)
        return self._attempt(key, lambda: tuple(self.inner.search(keyword, max_results)))

    def user_connections(self, user_id: int) -> Sequence[int]:
        key: RequestKey = ("connections", user_id, None)
        return self._attempt(key, lambda: tuple(self.inner.user_connections(user_id)))

    def user_timeline(self, user_id: int) -> TimelineView:
        key: RequestKey = ("timeline", user_id, None)
        return self._attempt(key, lambda: self.inner.user_timeline(user_id))

    # ------------------------------------------------------------------
    # passthroughs (estimators and wrappers reach these by attribute)
    # ------------------------------------------------------------------
    @property
    def meter(self):
        return self.inner.meter

    @property
    def platform(self):
        return self.inner.platform

    @property
    def limiter(self):
        return self.inner.limiter

    @property
    def latency(self):
        return self.inner.latency

    @property
    def clock(self):
        return self.inner.clock

    @property
    def total_cost(self) -> int:
        return self.inner.total_cost

    @property
    def simulated_wait(self) -> float:
        return self.inner.simulated_wait
