"""The abstract microblog API and its result types.

These are the *only* data shapes estimators see.  A :class:`ProfileView`
hides fields the platform does not expose (Twitter hides gender, §6.2); a
:class:`TimelineView` contains at most the platform's timeline cap of the
user's most recent posts (Twitter: 3 200, §2).

One deliberate exception to "estimators see only these shapes": when a
query context recognises a clean simulated stack it may answer
first-mention lookups straight from the store's columns *without*
building the :class:`TimelineView` — see :mod:`repro.api.fastpath`.
That shortcut is an implementation detail of the simulator, charged and
traced identically to a real ``user_timeline`` call; any client that
actually implements :class:`MicroblogAPI` (a live platform, a fault
wrapper) always goes through these types.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.platform.posts import Post
from repro.platform.users import Gender


@dataclass(frozen=True)
class SearchHit:
    """One search result: who posted the matching post, and when."""

    user_id: int
    post_id: int
    timestamp: float


@dataclass(frozen=True)
class ProfileView:
    """Profile fields as exposed by the platform's API."""

    user_id: int
    display_name: str
    followers: int
    gender: Optional[Gender]
    age: Optional[int]


@dataclass(frozen=True)
class TimelineView:
    """A user's retrievable timeline (most recent ``cap`` posts) + profile.

    ``truncated`` is True when the platform's cap hid older posts — the
    source of the small first-mention error the paper argues is negligible
    (§2, "only a very small fraction of extremely prolific users").
    """

    profile: ProfileView
    posts: Tuple[Post, ...]
    truncated: bool

    def mentions(self, keyword: str, start: float = float("-inf"), end: float = float("inf")) -> List[Post]:
        """Posts in the view that mention *keyword* inside ``[start, end)``."""
        needle = keyword.lower()
        return [p for p in self.posts if needle in p.keywords and start <= p.timestamp < end]

    def first_mention_time(self, keyword: str) -> Optional[float]:
        """Earliest *visible* mention of *keyword* (None if none visible)."""
        needle = keyword.lower()
        for post in self.posts:  # posts are oldest-first
            if needle in post.keywords:
                return post.timestamp
        return None


@dataclass(frozen=True)
class TimelinePage:
    """One page of a paginated timeline fetch."""

    posts: Tuple[Post, ...]
    profile: ProfileView
    next_cursor: Optional[int]


@dataclass(frozen=True)
class ConnectionsPage:
    """One page of a paginated connections fetch."""

    user_ids: Tuple[int, ...]
    next_cursor: Optional[int]


class MicroblogAPI(abc.ABC):
    """The three-query data-access model of §2."""

    @abc.abstractmethod
    def search(self, keyword: str, max_results: Optional[int] = None) -> Sequence[SearchHit]:
        """Recent posts mentioning *keyword* (recency-window limited).

        Implementations may return an immutable sequence; callers must not
        mutate the result.
        """

    @abc.abstractmethod
    def user_connections(self, user_id: int) -> Sequence[int]:
        """All users connected with *user_id*, ascending (paginated
        internally).  Implementations may return an immutable sequence;
        callers must not mutate the result."""

    @abc.abstractmethod
    def user_timeline(self, user_id: int) -> TimelineView:
        """Profile plus the user's retrievable posts (paginated internally)."""
