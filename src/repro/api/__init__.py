"""The restricted microblog API layer.

Everything the estimators know about the platform flows through this
subpackage, which mimics the three-query data-access model of §2 of the
paper — SEARCH (recent posts only), USER CONNECTIONS and USER TIMELINE —
with per-call cost accounting (the paper's efficiency metric), pagination
and rate limiting per :mod:`repro.platform.profiles`.
"""

from repro.api.accounting import CostMeter
from repro.api.ratelimit import RateLimiter
from repro.api.interface import (
    ConnectionsPage,
    MicroblogAPI,
    ProfileView,
    SearchHit,
    TimelinePage,
    TimelineView,
)
from repro.api.client import CachingClient, SimulatedMicroblogClient
from repro.api.faults import FAULT_PROFILES, FaultInjectingClient, FaultPlan
from repro.api.resilient import ResilientClient, RetryPolicy
from repro.api.streaming import StreamingAPI

__all__ = [
    "CostMeter",
    "RateLimiter",
    "MicroblogAPI",
    "SearchHit",
    "ProfileView",
    "TimelinePage",
    "TimelineView",
    "ConnectionsPage",
    "SimulatedMicroblogClient",
    "CachingClient",
    "FaultInjectingClient",
    "FaultPlan",
    "FAULT_PROFILES",
    "ResilientClient",
    "RetryPolicy",
    "StreamingAPI",
]
