"""The streaming API: how the paper collected its ground truth.

§3.2: "We used the streaming API to collect all public tweets mentioning a
diverse set of keywords ... Twitter ensures that the stream returns all
relevant tweets as long as their frequency is less than about 1% of the
entire Twitter Firehose."  And §1 footnote 1: an *unfiltered* stream is a
~1% random sample of all posts.

:class:`StreamingAPI` reproduces both behaviours over the simulated store:
a keyword-filtered track (complete as long as the keyword stays under the
firehose threshold — we flag when it does not) and an unfiltered 1% sample.
It reads the store directly because, like the paper's collection harness,
it ran *ahead of time* — it is a ground-truth tool, not part of the
estimators' restricted interface, and therefore is not cost-metered.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence, Tuple

from repro._rng import RandomLike, ensure_rng
from repro.errors import APIError
from repro.platform.clock import DAY
from repro.platform.posts import Post
from repro.platform.store import MicroblogStore

FIREHOSE_FRACTION_LIMIT = 0.01


class StreamingAPI:
    """Forward-only streams over the platform's post log."""

    def __init__(self, store: MicroblogStore, sample_rate: float = 0.01) -> None:
        if not 0.0 < sample_rate <= 1.0:
            raise APIError("sample_rate must be in (0, 1]")
        self.store = store
        self.sample_rate = sample_rate

    def track(
        self, keywords: Sequence[str], start: float, end: float
    ) -> List[Tuple[float, int, int]]:
        """All ``(timestamp, user_id, post_id)`` mentions of *keywords*.

        Merged across keywords, time-ordered, deduplicated by post id (a
        post mentioning two tracked keywords streams once).
        """
        if end <= start:
            raise APIError("end must be after start")
        merged: Dict[int, Tuple[float, int, int]] = {}
        for keyword in keywords:
            for entry in self.store.keyword_posts(keyword, start=start, end=end):
                merged[entry[2]] = entry
        return sorted(merged.values())

    def exceeds_firehose_limit(self, keyword: str, start: float, end: float) -> bool:
        """Would tracking *keyword* be rate-limited by the firehose cap?

        True when the keyword's share of all posts in the window exceeds
        ~1% — the condition under which the paper's ground truth would
        stop being exact.
        """
        matching = sum(1 for _ in self.store.keyword_posts(keyword, start=start, end=end))
        total = sum(1 for post in self.store.all_posts() if start <= post.timestamp < end)
        if total == 0:
            return False
        return matching / total > FIREHOSE_FRACTION_LIMIT

    def sample(self, start: float, end: float, seed: RandomLike = None) -> Iterator[Post]:
        """Unfiltered ~1% random sample of all posts in ``[start, end)``."""
        if end <= start:
            raise APIError("end must be after start")
        rng = ensure_rng(seed)
        for post in self.store.all_posts():
            if start <= post.timestamp < end and rng.random() < self.sample_rate:
                yield post

    def daily_frequency(self, keyword: str, start: float, end: float) -> List[Tuple[float, int]]:
        """Per-day mention counts — the data behind Figure 7."""
        if end <= start:
            raise APIError("end must be after start")
        buckets: Dict[int, int] = {}
        for timestamp, _, _ in self.store.keyword_posts(keyword, start=start, end=end):
            buckets[int((timestamp - start) // DAY)] = buckets.get(int((timestamp - start) // DAY), 0) + 1
        days = int((end - start) // DAY) + 1
        return [(start + day * DAY, buckets.get(day, 0)) for day in range(days)]
