"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one base class.  The API layer distinguishes budget
exhaustion (an expected, recoverable condition for budgeted estimators)
from genuine misuse.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class GraphError(ReproError):
    """Raised for malformed graph operations (unknown node, bad edge)."""


class PlatformError(ReproError):
    """Raised for inconsistent platform/simulator configuration."""


class APIError(ReproError):
    """Base class for errors raised by the simulated microblog API."""


class BudgetExhaustedError(APIError):
    """Raised when an estimator attempts an API call past its query budget.

    Budgeted estimators catch this internally and return the estimate
    accumulated so far, mirroring how a real client would stop issuing
    requests once its self-imposed budget is spent.
    """

    def __init__(self, spent: int, budget: int) -> None:
        super().__init__(f"query budget exhausted: spent {spent} of {budget}")
        self.spent = spent
        self.budget = budget


class RateLimitError(APIError):
    """Raised when a call exceeds the platform's rate limit window.

    Carries the simulated time at which the quota next resets so callers
    can sleep the simulated clock forward.
    """

    def __init__(self, retry_at: float) -> None:
        super().__init__(f"rate limit exceeded; retry at t={retry_at:.0f}s")
        self.retry_at = retry_at


class QueryError(ReproError):
    """Raised for malformed aggregate queries."""


class EstimationError(ReproError):
    """Raised when an estimator cannot produce an estimate.

    For example: no seed users could be found via the search API, or the
    walk never reached a node matching the query condition.
    """
