"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one base class.  The API layer distinguishes budget
exhaustion (an expected, recoverable condition for budgeted estimators)
from genuine misuse.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class GraphError(ReproError):
    """Raised for malformed graph operations (unknown node, bad edge)."""


class PlatformError(ReproError):
    """Raised for inconsistent platform/simulator configuration."""


class APIError(ReproError):
    """Base class for errors raised by the simulated microblog API."""


class BudgetExhaustedError(APIError):
    """Raised when an estimator attempts an API call past its query budget.

    Budgeted estimators catch this internally and return the estimate
    accumulated so far, mirroring how a real client would stop issuing
    requests once its self-imposed budget is spent.
    """

    def __init__(self, spent: int, budget: int) -> None:
        super().__init__(f"query budget exhausted: spent {spent} of {budget}")
        self.spent = spent
        self.budget = budget


class RateLimitError(APIError):
    """Raised when a call exceeds the platform's rate limit window.

    Carries the simulated time at which the quota next resets so callers
    can sleep the simulated clock forward.
    """

    def __init__(self, retry_at: float) -> None:
        super().__init__(f"rate limit exceeded; retry at t={retry_at:.0f}s")
        self.retry_at = retry_at


class TransientAPIError(APIError):
    """A request failed for a reason that retrying may fix.

    Models the 5xx responses, connection resets and rate-limit churn a
    real crawl sees.  :class:`~repro.api.resilient.ResilientClient`
    retries these with capped exponential backoff; anything else in the
    :class:`APIError` family is treated as permanent.
    """


class APITimeoutError(TransientAPIError):
    """A request (or one page of a paginated request) timed out.

    The name avoids shadowing the builtin :class:`TimeoutError`; it is
    the library's timeout member of the transient-fault family.
    """


class TruncatedResponseError(TransientAPIError):
    """A response arrived incomplete (detected transfer truncation).

    Real clients notice truncation out-of-band (content-length mismatch,
    missing continuation cursor), so it surfaces as an error rather than
    as silently short data.  ``partial`` carries the bytes that did
    arrive — a resilient caller may fall back on them as degraded data,
    but must never cache them as authoritative.
    """

    def __init__(self, message: str, partial=None) -> None:
        super().__init__(message)
        self.partial = partial


class CircuitOpenError(TransientAPIError):
    """The resilient client's circuit breaker is open and no cached
    fallback response exists for the request."""


class QueryError(ReproError):
    """Raised for malformed aggregate queries."""


class EstimationError(ReproError):
    """Raised when an estimator cannot produce an estimate.

    For example: no seed users could be found via the search API, or the
    walk never reached a node matching the query condition.
    """
