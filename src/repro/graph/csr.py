"""Frozen CSR (compressed sparse row) form of the social graph.

:class:`CSRGraph` is the read-only, cache-friendly compilation target of
:meth:`~repro.graph.social_graph.SocialGraph.freeze`.  The dict-of-sets
:class:`~repro.graph.social_graph.SocialGraph` is the right structure while
edges are being *added* (generators, cascades); once construction ends, every
consumer — the API client, the walk oracles, conductance and metrics code —
only ever reads neighborhoods.  Compiling to two flat int64 arrays
(``indptr``/``indices``, neighbors pre-sorted per row) buys:

* O(1) zero-copy neighbor slices (``neighbors_array``) instead of per-call
  ``frozenset`` copies;
* pre-sorted adjacency, so the connections API stops re-sorting neighbor
  sets on every uncached request;
* vectorized set algebra (``common_neighbors`` via sorted-array
  intersection) and O(n) degree statistics;
* ~an order of magnitude less memory than dict-of-sets at 10^5 nodes,
  which is what makes million-user platforms reachable (the rewiring
  argument of Zhou et al.: restructure the graph, not just the walk).

The class is API-compatible with ``SocialGraph``'s read surface (duck
typing; there is deliberately no inheritance so mutation methods cannot be
reached by accident).  Mutators raise :class:`GraphError`; use
:meth:`thaw` to get a mutable copy back.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Set, Tuple

import numpy as np

from repro.errors import GraphError


class CSRGraph:
    """Immutable undirected graph in CSR form with sorted neighbor rows."""

    __slots__ = (
        "indptr",
        "indices",
        "_ids",
        "_row",
        "_contiguous",
        "_edge_count",
        "_sorted_cache",
    )

    def __init__(self, indptr: np.ndarray, indices: np.ndarray, ids: np.ndarray) -> None:
        self.indptr = indptr
        self.indices = indices
        self._ids = ids
        # Node ids are almost always 0..n-1 (the simulator assigns them that
        # way); detect that and skip the dict lookup on the hot path.
        n = ids.size
        self._contiguous = bool(n == 0 or (ids[0] == 0 and ids[-1] == n - 1))
        self._row: Dict[int, int] = (
            {} if self._contiguous else {int(node): i for i, node in enumerate(ids)}
        )
        self._edge_count = indices.size // 2
        self._sorted_cache: Dict[int, Tuple[int, ...]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(cls, ids: Iterable[int], edges: np.ndarray) -> "CSRGraph":
        """Compile from a sorted id array and an ``(m, 2)`` edge array."""
        id_array = np.asarray(list(ids) if not isinstance(ids, np.ndarray) else ids, dtype=np.int64)
        id_array = np.sort(id_array)
        n = id_array.size
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        if edges.size:
            rows_u = np.searchsorted(id_array, edges[:, 0])
            rows_v = np.searchsorted(id_array, edges[:, 1])
            if (
                rows_u.size
                and (
                    rows_u.max(initial=0) >= n
                    or rows_v.max(initial=0) >= n
                    or not np.array_equal(id_array[rows_u], edges[:, 0])
                    or not np.array_equal(id_array[rows_v], edges[:, 1])
                )
            ):
                raise GraphError("edge endpoints must all be known node ids")
            src = np.concatenate([rows_u, rows_v])
            dst = np.concatenate([edges[:, 1], edges[:, 0]])
            order = np.lexsort((dst, src))
            src = src[order]
            dst = dst[order]
            indptr = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(np.bincount(src, minlength=n), out=indptr[1:])
            indices = np.ascontiguousarray(dst)
        else:
            indptr = np.zeros(n + 1, dtype=np.int64)
            indices = np.empty(0, dtype=np.int64)
        return cls(indptr, indices, id_array)

    @classmethod
    def from_graph(cls, graph) -> "CSRGraph":
        """Compile a mutable :class:`SocialGraph` (or return *graph* as-is)."""
        if isinstance(graph, CSRGraph):
            return graph
        adjacency = graph._adj  # intentional: compile-time access to internals
        ids = np.array(sorted(adjacency), dtype=np.int64)
        n = ids.size
        degrees = np.empty(n, dtype=np.int64)
        chunks: List[np.ndarray] = []
        for i, node in enumerate(ids):
            nbrs = np.fromiter(adjacency[int(node)], dtype=np.int64, count=len(adjacency[int(node)]))
            nbrs.sort()
            degrees[i] = nbrs.size
            chunks.append(nbrs)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        indices = np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
        return cls(indptr, indices, ids)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _row_of(self, node: int) -> int:
        if self._contiguous:
            if 0 <= node < self._ids.size:
                return int(node)
        elif node in self._row:
            return self._row[node]
        raise GraphError(f"node not present: {node}")

    # ------------------------------------------------------------------
    # queries (SocialGraph read API)
    # ------------------------------------------------------------------
    def __contains__(self, node: int) -> bool:
        if self._contiguous:
            return isinstance(node, (int, np.integer)) and 0 <= node < self._ids.size
        return node in self._row

    def __len__(self) -> int:
        return self._ids.size

    def __iter__(self) -> Iterator[int]:
        return iter(self._ids.tolist())

    @property
    def num_nodes(self) -> int:
        return self._ids.size

    @property
    def num_edges(self) -> int:
        return self._edge_count

    def nodes(self) -> List[int]:
        return self._ids.tolist()

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Each undirected edge exactly once, as ``(min, max)``."""
        indptr, indices, ids = self.indptr, self.indices, self._ids
        for i in range(ids.size):
            u = int(ids[i])
            row = indices[indptr[i]: indptr[i + 1]]
            for v in row[row > u].tolist():
                yield (u, v)

    def edge_array(self) -> np.ndarray:
        """All undirected edges as an ``(m, 2)`` int64 array, ``u < v`` rows.

        Vectorized — this is what makes the ``.npz`` platform spill a
        near-direct dump rather than a python edge loop.
        """
        counts = np.diff(self.indptr)
        src = np.repeat(self._ids, counts)
        dst = self.indices
        mask = src < dst
        return np.column_stack([src[mask], dst[mask]])

    def has_edge(self, u: int, v: int) -> bool:
        if u not in self or v not in self:
            return False
        i = self._row_of(u)
        row = self.indices[self.indptr[i]: self.indptr[i + 1]]
        pos = np.searchsorted(row, v)
        return bool(pos < row.size and row[pos] == v)

    def neighbors(self, node: int) -> FrozenSet[int]:
        """Neighbor set of *node* (frozen copy, ``SocialGraph`` parity)."""
        return frozenset(self.neighbors_array(node).tolist())

    def neighbors_unsafe(self, node: int) -> np.ndarray:
        """Zero-copy sorted neighbor ids (do not mutate).

        Same contract as ``SocialGraph.neighbors_unsafe``: a direct view
        for hot read paths, supporting iteration and membership tests.
        """
        i = self._row_of(node)
        return self.indices[self.indptr[i]: self.indptr[i + 1]]

    def neighbors_array(self, node: int) -> np.ndarray:
        """Alias of :meth:`neighbors_unsafe` with an explicit name."""
        return self.neighbors_unsafe(node)

    def sorted_neighbors(self, node: int) -> Tuple[int, ...]:
        """Ascending neighbor ids as a cached tuple of python ints.

        This is the connections-API serving path: compiled once per node,
        allocation-free afterwards, already sorted — the per-call
        ``sorted(set)`` of the legacy path disappears.
        """
        cached = self._sorted_cache.get(node)
        if cached is None:
            cached = tuple(self.neighbors_unsafe(node).tolist())
            self._sorted_cache[node] = cached
        return cached

    def degree(self, node: int) -> int:
        i = self._row_of(node)
        return int(self.indptr[i + 1] - self.indptr[i])

    def common_neighbors(self, u: int, v: int) -> Set[int]:
        """Nodes adjacent to both *u* and *v* (sorted-array intersection)."""
        if u not in self or v not in self:
            return set()
        a = self.neighbors_unsafe(u)
        b = self.neighbors_unsafe(v)
        return set(np.intersect1d(a, b, assume_unique=True).tolist())

    def common_neighbor_count(self, u: int, v: int) -> int:
        """``len(common_neighbors(u, v))`` without building the set."""
        if u not in self or v not in self:
            return 0
        a = self.neighbors_unsafe(u)
        b = self.neighbors_unsafe(v)
        return int(np.intersect1d(a, b, assume_unique=True).size)

    # ------------------------------------------------------------------
    # derivation
    # ------------------------------------------------------------------
    def subgraph(self, keep: Iterable[int]):
        """Induced (mutable) subgraph on *keep* — same contract as
        ``SocialGraph.subgraph``, so downstream analyses can keep editing."""
        from repro.graph.social_graph import SocialGraph

        keep_set = {n for n in keep if n in self}
        sub = SocialGraph(nodes=keep_set)
        for u in keep_set:
            for v in self.neighbors_unsafe(u).tolist():
                if v in keep_set and u < v:
                    sub.add_edge(u, v)
        return sub

    def copy(self) -> "CSRGraph":
        """Immutable, so a copy is the object itself."""
        return self

    def freeze(self) -> "CSRGraph":
        """Already frozen (idempotent)."""
        return self

    def thaw(self):
        """Mutable :class:`SocialGraph` with the same nodes and edges."""
        from repro.graph.social_graph import SocialGraph

        graph = SocialGraph()
        indptr, indices = self.indptr, self.indices
        graph._adj = {
            int(node): set(indices[indptr[i]: indptr[i + 1]].tolist())
            for i, node in enumerate(self._ids)
        }
        graph._edge_count = self._edge_count
        return graph

    def degree_sequence(self) -> List[int]:
        """Degrees of all nodes, descending."""
        degrees = np.diff(self.indptr)
        return np.sort(degrees)[::-1].tolist()

    def volume(self, nodes: Iterable[int]) -> int:
        """Sum of degrees over *nodes* (the ``a(S)`` of Eq. 1)."""
        total = 0
        for node in nodes:
            if node in self:
                i = self._row_of(node)
                total += int(self.indptr[i + 1] - self.indptr[i])
        return total

    def triangles_at(self, node: int) -> int:
        """Triangles through *node* via sorted intersections (fast path)."""
        nbrs = self.neighbors_unsafe(node)
        total = 0
        for v in nbrs.tolist():
            total += int(np.intersect1d(nbrs, self.neighbors_unsafe(v), assume_unique=True).size)
        return total // 2

    # ------------------------------------------------------------------
    # mutation guards
    # ------------------------------------------------------------------
    def _frozen(self, operation: str):
        raise GraphError(f"CSRGraph is immutable ({operation}); call thaw() for a mutable copy")

    def add_node(self, node: int) -> None:
        self._frozen("add_node")

    def add_edge(self, u: int, v: int) -> None:
        self._frozen("add_edge")

    def remove_edge(self, u: int, v: int) -> None:
        self._frozen("remove_edge")

    def remove_node(self, node: int) -> None:
        self._frozen("remove_node")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CSRGraph(n={self.num_nodes}, m={self.num_edges})"
