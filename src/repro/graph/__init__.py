"""Graph substrate: the undirected social graph and its analysis tools.

This subpackage is self-contained (no dependency on the platform or API
layers) and provides:

* :class:`~repro.graph.social_graph.SocialGraph` — compact undirected graph.
* :mod:`~repro.graph.generators` — synthetic social-graph models and the
  planted level-by-level lattice from Theorem 4.1 of the paper.
* :mod:`~repro.graph.snap` — SNAP-style edge-list reader/writer.
* :mod:`~repro.graph.components` — connected components and recall.
* :mod:`~repro.graph.conductance` — closed-form (Theorem 4.1) and empirical
  conductance.
* :mod:`~repro.graph.metrics` — common neighbors, clustering, degree stats.
"""

from repro.graph.social_graph import SocialGraph
from repro.graph.csr import CSRGraph
from repro.graph.components import connected_components, largest_component, recall_of_largest_component
from repro.graph.generators import (
    barabasi_albert_graph,
    erdos_renyi_graph,
    planted_level_graph,
    watts_strogatz_graph,
)
from repro.graph.snap import read_snap_edgelist, write_snap_edgelist
from repro.graph.conductance import (
    conductance_of_cut,
    estimate_conductance_spectral,
    estimate_conductance_sweep,
    theorem41_conductance_with_intra,
    theorem41_conductance_without_intra,
    corollary41_optimal_degree,
)

__all__ = [
    "SocialGraph",
    "CSRGraph",
    "connected_components",
    "largest_component",
    "recall_of_largest_component",
    "barabasi_albert_graph",
    "erdos_renyi_graph",
    "watts_strogatz_graph",
    "planted_level_graph",
    "read_snap_edgelist",
    "write_snap_edgelist",
    "conductance_of_cut",
    "estimate_conductance_spectral",
    "estimate_conductance_sweep",
    "theorem41_conductance_with_intra",
    "theorem41_conductance_without_intra",
    "corollary41_optimal_degree",
]
