"""A compact undirected graph used as the social graph substrate.

The paper treats all platform relationships (follower/followee, Circles,
blog follows, co-activity) as a single *undirected* social graph (§3.2):
for directed relationships, two users are connected if either follows the
other.  This module implements that abstraction with integer node ids and
set-based adjacency, which is the access pattern every sampler needs:
``neighbors(u)``, ``degree(u)`` and membership tests.

The class deliberately exposes a small, explicit API instead of wrapping
networkx: the simulated platform holds graphs with 10^4–10^5 nodes and the
walkers touch neighbors billions of times across a benchmark run, so a thin
dict-of-sets with no per-edge attribute dictionaries keeps both memory and
lookup overhead low.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, Iterator, List, Set, Tuple

from repro.errors import GraphError


class SocialGraph:
    """Undirected simple graph over hashable (typically integer) node ids.

    Self-loops and parallel edges are rejected: neither occurs in a social
    graph (a user does not follow themself twice) and both would bias
    degree-proportional samplers.
    """

    def __init__(self, nodes: Iterable[int] = (), edges: Iterable[Tuple[int, int]] = ()) -> None:
        self._adj: Dict[int, Set[int]] = {}
        self._edge_count = 0
        for node in nodes:
            self.add_node(node)
        for u, v in edges:
            self.add_edge(u, v)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node: int) -> None:
        """Add *node* if absent (idempotent)."""
        self._adj.setdefault(node, set())

    def add_edge(self, u: int, v: int) -> None:
        """Add the undirected edge ``{u, v}``, creating endpoints as needed.

        Adding an existing edge is a no-op; a self-loop raises
        :class:`GraphError`.
        """
        if u == v:
            raise GraphError(f"self-loop rejected: {u}")
        self.add_node(u)
        self.add_node(v)
        if v not in self._adj[u]:
            self._adj[u].add(v)
            self._adj[v].add(u)
            self._edge_count += 1

    def add_unique_edges(self, pairs: Iterable[Tuple[int, int]]) -> None:
        """Bulk-insert edges known to be deduplicated, self-loop-free and
        over existing nodes (e.g. the output of a vectorized generator's
        ``np.unique`` pass).  Skips :meth:`add_edge`'s per-edge checks —
        callers violating the precondition corrupt the edge count.
        """
        adj = self._adj
        count = 0
        for u, v in pairs:
            adj[u].add(v)
            adj[v].add(u)
            count += 1
        self._edge_count += count

    def remove_edge(self, u: int, v: int) -> None:
        """Remove the edge ``{u, v}``; raises :class:`GraphError` if absent."""
        if not self.has_edge(u, v):
            raise GraphError(f"edge not present: {u}-{v}")
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        self._edge_count -= 1

    def remove_node(self, node: int) -> None:
        """Remove *node* and all incident edges."""
        if node not in self._adj:
            raise GraphError(f"node not present: {node}")
        for neighbor in self._adj[node]:
            self._adj[neighbor].discard(node)
        self._edge_count -= len(self._adj[node])
        del self._adj[node]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, node: int) -> bool:
        return node in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __iter__(self) -> Iterator[int]:
        return iter(self._adj)

    @property
    def num_nodes(self) -> int:
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        return self._edge_count

    def nodes(self) -> List[int]:
        """All node ids (unordered snapshot list)."""
        return list(self._adj)

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate each undirected edge exactly once, as ``(min, max)``."""
        for u, nbrs in self._adj.items():
            for v in nbrs:
                if u < v:
                    yield (u, v)

    def has_edge(self, u: int, v: int) -> bool:
        return u in self._adj and v in self._adj[u]

    def neighbors(self, node: int) -> FrozenSet[int]:
        """Neighbor set of *node* (frozen view copy)."""
        try:
            return frozenset(self._adj[node])
        except KeyError:
            raise GraphError(f"node not present: {node}") from None

    def neighbors_unsafe(self, node: int) -> Set[int]:
        """Direct reference to the internal neighbor set (do not mutate).

        Hot path for random walks; skips the defensive copy of
        :meth:`neighbors`.
        """
        return self._adj[node]

    def degree(self, node: int) -> int:
        try:
            return len(self._adj[node])
        except KeyError:
            raise GraphError(f"node not present: {node}") from None

    def common_neighbors(self, u: int, v: int) -> Set[int]:
        """Nodes adjacent to both *u* and *v*."""
        a, b = self._adj.get(u, set()), self._adj.get(v, set())
        if len(a) > len(b):
            a, b = b, a
        return {w for w in a if w in b}

    def common_neighbor_count(self, u: int, v: int) -> int:
        """``len(common_neighbors(u, v))`` via C-speed set intersection.

        The cascade's weak-tie test calls this once per exposure; skipping
        the python-level comprehension measurably speeds platform builds.
        """
        a, b = self._adj.get(u, None), self._adj.get(v, None)
        if a is None or b is None:
            return 0
        return len(a & b)

    # ------------------------------------------------------------------
    # derivation
    # ------------------------------------------------------------------
    def freeze(self):
        """Compile to an immutable :class:`~repro.graph.csr.CSRGraph`.

        The CSR form is the data plane every read-only consumer (API
        client, oracles, conductance/metrics) should hold once
        construction is complete: sorted flat neighbor arrays, zero-copy
        slicing, and no per-call set copies.
        """
        from repro.graph.csr import CSRGraph

        return CSRGraph.from_graph(self)

    def subgraph(self, keep: Iterable[int]) -> "SocialGraph":
        """Induced subgraph on the nodes in *keep* (unknown ids ignored)."""
        keep_set = {n for n in keep if n in self._adj}
        sub = SocialGraph(nodes=keep_set)
        for u in keep_set:
            for v in self._adj[u]:
                if v in keep_set and u < v:
                    sub.add_edge(u, v)
        return sub

    def copy(self) -> "SocialGraph":
        clone = SocialGraph()
        clone._adj = {u: set(nbrs) for u, nbrs in self._adj.items()}
        clone._edge_count = self._edge_count
        return clone

    def degree_sequence(self) -> List[int]:
        """Degrees of all nodes, descending."""
        return sorted((len(nbrs) for nbrs in self._adj.values()), reverse=True)

    def volume(self, nodes: Iterable[int]) -> int:
        """Sum of degrees over *nodes* (the ``a(S)`` of Eq. 1 in the paper)."""
        return sum(len(self._adj[n]) for n in nodes if n in self._adj)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SocialGraph(n={self.num_nodes}, m={self.num_edges})"


def union_of_edges(graphs: Iterable[SocialGraph]) -> SocialGraph:
    """Union of several graphs' node and edge sets (convenience helper)."""
    merged = SocialGraph()
    for graph in graphs:
        for node in graph:
            merged.add_node(node)
        for u, v in graph.edges():
            merged.add_edge(u, v)
    return merged


def edge_boundary(graph: SocialGraph, inside: Set[int]) -> Iterator[Tuple[int, int]]:
    """Edges with exactly one endpoint in *inside* (cut edges)."""
    for u in inside:
        if u not in graph:
            continue
        for v in graph.neighbors_unsafe(u):
            if v not in inside:
                yield (u, v)


def triangle_count_at(graph: SocialGraph, node: int) -> int:
    """Number of triangles through *node* (for clustering metrics)."""
    if hasattr(graph, "triangles_at"):  # CSR fast path: sorted intersections
        return graph.triangles_at(node)
    nbrs = list(graph.neighbors_unsafe(node))
    count = 0
    for i, u in enumerate(nbrs):
        u_nbrs = graph.neighbors_unsafe(u)
        for v in itertools.islice(nbrs, i + 1, None):
            if v in u_nbrs:
                count += 1
    return count
