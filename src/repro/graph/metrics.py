"""Descriptive graph statistics used by Table 2 and the analysis sections.

Table 2 of the paper contrasts, per keyword, the average number of common
neighbors across intra-level edges versus other edges (column "Avg #common
neighbors": e.g. "16, 2" for FiscalCliff) — evidence that intra-level edges
live inside tightly connected communities.  This module provides those
statistics plus clustering and degree summaries used in tests and benches.
"""

from __future__ import annotations

import statistics
from typing import Dict, Iterable, Sequence, Tuple

from repro.errors import GraphError
from repro.graph.social_graph import SocialGraph, triangle_count_at


def average_common_neighbors(graph: SocialGraph, edges: Iterable[Tuple[int, int]]) -> float:
    """Mean |N(u) ∩ N(v)| over the given *edges* (0.0 for an empty list)."""
    counts = [len(graph.common_neighbors(u, v)) for u, v in edges]
    return statistics.fmean(counts) if counts else 0.0


def local_clustering(graph: SocialGraph, node: int) -> float:
    """Watts–Strogatz local clustering coefficient of *node*."""
    degree = graph.degree(node)
    if degree < 2:
        return 0.0
    return 2.0 * triangle_count_at(graph, node) / (degree * (degree - 1))


def average_clustering(graph: SocialGraph, nodes: Iterable[int] = None) -> float:
    """Mean local clustering over *nodes* (default: all nodes)."""
    targets = list(nodes) if nodes is not None else graph.nodes()
    if not targets:
        raise GraphError("no nodes to average over")
    return statistics.fmean(local_clustering(graph, n) for n in targets)


def degree_statistics(graph: SocialGraph) -> Dict[str, float]:
    """Summary of the degree distribution: min/mean/median/max."""
    degrees = [graph.degree(n) for n in graph]
    if not degrees:
        raise GraphError("empty graph")
    return {
        "min": float(min(degrees)),
        "mean": statistics.fmean(degrees),
        "median": float(statistics.median(degrees)),
        "max": float(max(degrees)),
    }


def edge_density(graph: SocialGraph) -> float:
    """2m / (n(n-1)) — fraction of possible edges present."""
    n = graph.num_nodes
    if n < 2:
        raise GraphError("density undefined for n < 2")
    return 2.0 * graph.num_edges / (n * (n - 1))


def partition_modularity(graph: SocialGraph, communities: Sequence[Iterable[int]]) -> float:
    """Newman modularity Q of a node partition [26 in the paper].

    Q = sum_c [ m_c/m - (vol_c / 2m)^2 ] where m_c counts intra-community
    edges.  Used by tests to confirm that cascade-induced levels produce the
    community structure the paper observes.
    """
    m = graph.num_edges
    if m == 0:
        raise GraphError("modularity undefined for edgeless graph")
    q = 0.0
    seen: set = set()
    for community in communities:
        members = {n for n in community if n in graph}
        overlap = members & seen
        if overlap:
            raise GraphError(f"communities overlap on {sorted(overlap)[:3]}")
        seen |= members
        internal = sum(1 for u, v in graph.edges() if u in members and v in members)
        volume = graph.volume(members)
        q += internal / m - (volume / (2.0 * m)) ** 2
    return q
