"""Graph conductance: closed forms from Theorem 4.1 and empirical estimates.

The paper justifies removing intra-level edges by showing the conductance
(Eq. 1)

    phi(G) = min_S  cut(S, V\\S) / min(vol(S), vol(V\\S))

of the planted level-by-level lattice *drops* when each node gains ``k``
intra-level edges (Eq. 2) relative to the intra-free graph (Eq. 3).  We
implement those closed forms verbatim, plus three empirical tools:

* :func:`conductance_of_cut` — Eq. 1 evaluated for one explicit cut;
* :func:`exact_conductance` — brute force over all cuts (tiny graphs, used
  by tests to validate the estimators);
* :func:`estimate_conductance_spectral` — via the spectral gap of the lazy
  random walk and the Cheeger inequalities  lambda_2/2 <= phi <=
  sqrt(2*lambda_2);
* :func:`estimate_conductance_sweep` — a Fiedler sweep cut, the standard
  constructive upper bound used by the pilot-walk interval selector.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence, Set, Tuple

import numpy as np

from repro.errors import GraphError
from repro.graph.social_graph import SocialGraph


# ----------------------------------------------------------------------
# Eq. 1 — conductance of an explicit cut, and exact minimum for tiny graphs
# ----------------------------------------------------------------------
def conductance_of_cut(graph: SocialGraph, side: Iterable[int]) -> float:
    """Conductance of the cut (S, V\\S) for ``S = side`` (Eq. 1).

    Raises :class:`GraphError` when the cut is trivial (one side empty or of
    zero volume), where conductance is undefined.
    """
    inside = {n for n in side if n in graph}
    if not inside or len(inside) == graph.num_nodes:
        raise GraphError("cut must have two non-empty sides")
    cut = 0
    for u in inside:
        for v in graph.neighbors_unsafe(u):
            if v not in inside:
                cut += 1
    vol_inside = graph.volume(inside)
    vol_outside = 2 * graph.num_edges - vol_inside
    denom = min(vol_inside, vol_outside)
    if denom == 0:
        raise GraphError("cut side has zero volume; conductance undefined")
    return cut / denom


def exact_conductance(graph: SocialGraph) -> float:
    """Exact phi(G) by enumerating all 2^(n-1)-1 cuts.

    Exponential — guarded to n <= 20.  Exists so tests can check the
    spectral and sweep estimators against ground truth.
    """
    nodes = graph.nodes()
    n = len(nodes)
    if n > 20:
        raise GraphError("exact_conductance is exponential; use estimators for n > 20")
    if n < 2:
        raise GraphError("need at least two nodes")
    best = math.inf
    # Fix nodes[0] on one side to halve the enumeration.
    rest = nodes[1:]
    for mask in range(2 ** (n - 1)):
        side = {nodes[0]}
        for bit, node in enumerate(rest):
            if mask >> bit & 1:
                side.add(node)
        if len(side) == n:
            continue
        try:
            best = min(best, conductance_of_cut(graph, side))
        except GraphError:
            continue  # zero-volume side (isolated nodes)
    if best is math.inf:
        raise GraphError("graph has no valid cut (all nodes isolated?)")
    return best


# ----------------------------------------------------------------------
# Spectral machinery
# ----------------------------------------------------------------------
def _transition_matrix(graph: SocialGraph, nodes: Sequence[int]) -> np.ndarray:
    index = {node: i for i, node in enumerate(nodes)}
    n = len(nodes)
    P = np.zeros((n, n))
    for u in nodes:
        deg = graph.degree(u)
        if deg == 0:
            P[index[u], index[u]] = 1.0
            continue
        for v in graph.neighbors_unsafe(u):
            P[index[u], index[v]] = 1.0 / deg
    return P


def spectral_gap(graph: SocialGraph) -> float:
    """1 - lambda_2 of the lazy walk (I + P)/2 — the mixing-rate gap.

    The lazy walk sidesteps periodicity (e.g. bipartite level graphs), so
    the gap is always in [0, 1] and 0 iff the graph is disconnected.
    """
    nodes = graph.nodes()
    if len(nodes) < 2:
        raise GraphError("need at least two nodes")
    P = _transition_matrix(graph, nodes)
    lazy = 0.5 * (np.eye(len(nodes)) + P)
    # Symmetrise via the similarity transform D^{1/2} P D^{-1/2} so we can
    # use the (stable, real) symmetric eigensolver.
    degrees = np.array([max(graph.degree(u), 1) for u in nodes], dtype=float)
    d_sqrt = np.sqrt(degrees)
    sym = lazy * d_sqrt[:, None] / d_sqrt[None, :]
    sym = 0.5 * (sym + sym.T)  # clean round-off asymmetry
    eigenvalues = np.linalg.eigvalsh(sym)
    lambda2 = eigenvalues[-2]
    return float(1.0 - lambda2)


def estimate_conductance_spectral(graph: SocialGraph) -> float:
    """Cheeger-based point estimate of phi(G).

    With gap g (of the lazy walk; the non-lazy gap is 2g) the Cheeger
    inequalities give ``g <= phi <= sqrt(8 g)``; we return the geometric
    mean of the two bounds, which tracks exact conductance well on the
    level lattices we care about and, crucially, preserves *ordering*
    between candidate graphs — all the interval selector needs.
    """
    gap = max(spectral_gap(graph), 0.0)
    lower = gap
    upper = math.sqrt(8.0 * gap)
    return math.sqrt(lower * upper) if lower > 0 else upper


def fiedler_vector(graph: SocialGraph) -> Tuple[List[int], np.ndarray]:
    """Nodes and the Fiedler (second-smallest Laplacian) eigenvector."""
    nodes = graph.nodes()
    n = len(nodes)
    if n < 2:
        raise GraphError("need at least two nodes")
    index = {node: i for i, node in enumerate(nodes)}
    L = np.zeros((n, n))
    for u in nodes:
        L[index[u], index[u]] = graph.degree(u)
        for v in graph.neighbors_unsafe(u):
            L[index[u], index[v]] = -1.0
    eigenvalues, eigenvectors = np.linalg.eigh(L)
    return nodes, eigenvectors[:, 1]


def estimate_conductance_sweep(graph: SocialGraph) -> float:
    """Best sweep cut along the Fiedler vector — an upper bound on phi(G)."""
    nodes, vec = fiedler_vector(graph)
    order = [node for _, node in sorted(zip(vec, nodes), key=lambda pair: pair[0])]
    best = math.inf
    side: Set[int] = set()
    for node in order[:-1]:
        side.add(node)
        try:
            best = min(best, conductance_of_cut(graph, side))
        except GraphError:
            continue
    if best is math.inf:
        raise GraphError("no valid sweep cut found")
    return best


# ----------------------------------------------------------------------
# Theorem 4.1 closed forms (paper Eq. 2 and Eq. 3) and Corollary 4.1
# ----------------------------------------------------------------------
def theorem41_conductance_without_intra(n: int, h: int, d: float) -> float:
    """phi(G') of the intra-free level lattice (paper Eq. 3).

    Parameters mirror the theorem: *n* nodes in *h* equal levels, each node
    wired to *d* random nodes of the adjacent level.  Valid for d < n/h.
    """
    _check_lattice_params(n, h)
    if d <= 0:
        raise GraphError("d must be positive")
    per_level = n / h
    if d <= per_level / 2:
        return h / (n * d * (h - 1))
    if d < per_level:
        return min((2 * h * d - n) / (n * d), 1.0 / (h - 1))
    raise GraphError(f"Theorem 4.1 requires d < n/h (= {per_level:.1f}), got d={d}")


def theorem41_conductance_with_intra(n: int, h: int, d: float, k: float) -> float:
    """phi(G) of the level lattice with k intra-level edges/node (Eq. 2)."""
    _check_lattice_params(n, h)
    if d <= 0 or k < 0:
        raise GraphError("d must be positive and k non-negative")
    per_level = n / h
    half = per_level / 2
    if d <= half and k <= half:
        return h / ((k + d) * (h - 1) * n)
    if d <= half and half < k < per_level:
        return min((2 * k * h - n) / (k * h + d * n), 2 * d / (2 * d * (h - 1) + h * k))
    if half < d < per_level and k <= half:
        return min((2 * d * h - n) / (k * h + d * n), 2 * d / (2 * d * (h - 1) + h * k))
    if half < d < per_level and half < k < per_level:
        return min(
            (k - n / (2 * h)) * (2 * d * h - n) / (k * h + d * n),
            2 * d / (2 * d * (h - 1) + h * k),
        )
    raise GraphError(
        f"Theorem 4.1 requires d, k < n/h (= {per_level:.1f}), got d={d}, k={k}"
    )


def corollary41_optimal_degree(h: int) -> float:
    """Conductance-maximising adjacent-level degree d* (Corollary 4.1).

    d* = (2h-1)(2h-2) / (h(2h-9)); tends to 2 as h grows — the paper's
    "rule of d = 2" for long-propagating keywords.  Undefined (negative /
    infinite) for h <= 4 where the denominator is non-positive.
    """
    if h <= 4:
        raise GraphError("Corollary 4.1 requires h >= 5 (denominator h(2h-9) > 0)")
    return (2 * h - 1) * (2 * h - 2) / (h * (2 * h - 9))


def horizontal_cut_conductance(n: int, h: int, d: float, k: float = 0.0) -> float:
    """Conductance of the best horizontal (between-levels) cut.

    From the proof sketch: 1/(h-1) without intra edges, and
    1/(h - 1 + h*k/(2d)) with k intra-level edges per node.
    """
    _check_lattice_params(n, h)
    if d <= 0 or k < 0:
        raise GraphError("d must be positive and k non-negative")
    return 1.0 / (h - 1 + h * k / (2 * d))


def _check_lattice_params(n: int, h: int) -> None:
    if h < 2:
        raise GraphError("need at least two levels")
    if n < h:
        raise GraphError("need at least one node per level")
    if n % h:
        raise GraphError("Theorem 4.1 model assumes n divisible by h")
