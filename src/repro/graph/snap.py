"""SNAP-style edge-list I/O.

Public SNAP datasets (e.g. ego-Twitter, soc-Pokec) ship as whitespace-
separated ``u v`` lines with ``#`` comments.  This reader lets any such
file be used as the social-graph substrate in place of our generators, and
the writer lets benchmarks persist generated graphs for re-use.
"""

from __future__ import annotations

import os
from typing import Union

from repro.errors import GraphError
from repro.graph.social_graph import SocialGraph

PathLike = Union[str, os.PathLike]


def read_snap_edgelist(path: PathLike, directed_as_undirected: bool = True) -> SocialGraph:
    """Parse a SNAP edge list into a :class:`SocialGraph`.

    Directed lists are collapsed to undirected edges (the paper's treatment
    of follower/followee, §3.2); self-loops are dropped rather than raising,
    since several SNAP datasets contain them.
    """
    graph = SocialGraph()
    with open(path, "r", encoding="utf-8") as handle:
        for line_no, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphError(f"{path}:{line_no}: expected 'u v', got {line!r}")
            try:
                u, v = int(parts[0]), int(parts[1])
            except ValueError as exc:
                raise GraphError(f"{path}:{line_no}: non-integer node id in {line!r}") from exc
            if u == v:
                continue
            graph.add_edge(u, v)
    return graph


def write_snap_edgelist(graph: SocialGraph, path: PathLike, header: str = "") -> None:
    """Write *graph* as a SNAP edge list (each undirected edge once)."""
    with open(path, "w", encoding="utf-8") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        handle.write(f"# Nodes: {graph.num_nodes} Edges: {graph.num_edges}\n")
        for u, v in sorted(graph.edges()):
            handle.write(f"{u}\t{v}\n")
