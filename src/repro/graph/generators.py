"""Synthetic graph models used as social-graph substrates.

The paper runs on the live Twitter/Google+/Tumblr graphs.  Offline we
substitute generative models whose topology exhibits the two properties the
paper's analysis hinges on:

* heavy-tailed degrees (Barabási–Albert preferential attachment) — a few
  celebrities with huge follower counts dominate AVG(#followers), which is
  why that aggregate needs many more queries than AVG(display-name length)
  (Figure 11's discussion);
* tight local clustering (Watts–Strogatz rewiring) — the "tightly connected
  communities" that trap random walks and motivate the level-by-level
  subgraph (§4.1).

:func:`planted_level_graph` builds the exact lattice model analysed in
Theorem 4.1: ``h`` levels of ``n/h`` nodes, each node wired to ``d`` random
nodes in the next level and ``k`` random nodes in its own level, so the
closed-form conductance expressions can be validated empirically.
"""

from __future__ import annotations

from typing import List, Sequence

from repro._rng import RandomLike, ensure_rng
from repro.errors import GraphError
from repro.graph.social_graph import SocialGraph


def erdos_renyi_graph(n: int, p: float, seed: RandomLike = None) -> SocialGraph:
    """G(n, p) random graph over nodes ``0..n-1``.

    Uses the geometric skipping method, O(n + m) expected time, so it stays
    usable for the sparse graphs (p ~ 10/n) the benchmarks need.
    """
    if n < 0:
        raise GraphError("n must be non-negative")
    if not 0.0 <= p <= 1.0:
        raise GraphError("p must be in [0, 1]")
    rng = ensure_rng(seed)
    graph = SocialGraph(nodes=range(n))
    if p == 0.0 or n < 2:
        return graph
    if p == 1.0:
        for u in range(n):
            for v in range(u + 1, n):
                graph.add_edge(u, v)
        return graph

    import math

    log_q = math.log(1.0 - p)
    v = 1
    w = -1
    while v < n:
        r = rng.random()
        w = w + 1 + int(math.log(1.0 - r) / log_q)
        while w >= v and v < n:
            w -= v
            v += 1
        if v < n:
            graph.add_edge(v, w)
    return graph


def barabasi_albert_graph(n: int, m: int, seed: RandomLike = None) -> SocialGraph:
    """Preferential-attachment graph: each new node attaches to *m* targets.

    The repeated-nodes list implements degree-proportional target choice in
    O(1) per draw.  Produces the power-law follower distribution typical of
    microblog platforms.
    """
    if m < 1 or n < m + 1:
        raise GraphError(f"need n >= m + 1 >= 2, got n={n}, m={m}")
    rng = ensure_rng(seed)
    graph = SocialGraph(nodes=range(n))
    # Start from a star over the first m+1 nodes so every node has degree > 0.
    repeated: List[int] = []
    for v in range(1, m + 1):
        graph.add_edge(0, v)
        repeated.extend((0, v))
    for source in range(m + 1, n):
        targets: set = set()
        while len(targets) < m:
            targets.add(rng.choice(repeated))
        for target in targets:
            graph.add_edge(source, target)
            repeated.extend((source, target))
    return graph


def watts_strogatz_graph(n: int, k: int, p: float, seed: RandomLike = None) -> SocialGraph:
    """Small-world ring lattice with rewiring probability *p*.

    *k* (even) is the base degree; each clockwise edge is rewired to a
    uniform random target with probability *p*.
    """
    if k % 2 or k < 2:
        raise GraphError("k must be even and >= 2")
    if n <= k:
        raise GraphError(f"need n > k, got n={n}, k={k}")
    if not 0.0 <= p <= 1.0:
        raise GraphError("p must be in [0, 1]")
    rng = ensure_rng(seed)
    graph = SocialGraph(nodes=range(n))
    for u in range(n):
        for offset in range(1, k // 2 + 1):
            graph.add_edge(u, (u + offset) % n)
    for u in range(n):
        for offset in range(1, k // 2 + 1):
            v = (u + offset) % n
            if rng.random() < p and graph.has_edge(u, v):
                candidates = [w for w in range(n) if w != u and not graph.has_edge(u, w)]
                if candidates:
                    graph.remove_edge(u, v)
                    graph.add_edge(u, rng.choice(candidates))
    return graph


def planted_level_graph(
    levels: int,
    nodes_per_level: int,
    adjacent_degree: int,
    intra_degree: int = 0,
    seed: RandomLike = None,
) -> SocialGraph:
    """The lattice model of Theorem 4.1.

    Nodes ``level * nodes_per_level + i`` for ``i < nodes_per_level`` form
    level ``level`` (0 = top).  Each node in level ``i < h-1`` connects to
    ``adjacent_degree`` distinct random nodes of level ``i+1``; each node
    also connects to ``intra_degree`` distinct random nodes of its own level
    (the detrimental edges the paper removes).
    """
    if levels < 1 or nodes_per_level < 1:
        raise GraphError("levels and nodes_per_level must be positive")
    if adjacent_degree > nodes_per_level:
        raise GraphError("adjacent_degree cannot exceed nodes_per_level")
    if intra_degree > nodes_per_level - 1:
        raise GraphError("intra_degree cannot exceed nodes_per_level - 1")
    rng = ensure_rng(seed)
    total = levels * nodes_per_level
    graph = SocialGraph(nodes=range(total))

    def level_nodes(level: int) -> Sequence[int]:
        start = level * nodes_per_level
        return range(start, start + nodes_per_level)

    for level in range(levels - 1):
        below = list(level_nodes(level + 1))
        for u in level_nodes(level):
            for v in rng.sample(below, adjacent_degree):
                graph.add_edge(u, v)
    if intra_degree:
        for level in range(levels):
            members = list(level_nodes(level))
            for u in members:
                others = [v for v in members if v != u]
                for v in rng.sample(others, intra_degree):
                    graph.add_edge(u, v)
    return graph


def community_graph(
    n: int,
    mean_community_size: float = 40.0,
    within_degree: float = 8.0,
    inter_edges_per_node: float = 1.5,
    hub_fraction: float = 0.015,
    hub_bias: float = 0.5,
    seed: RandomLike = None,
    vectorized: bool = False,
) -> SocialGraph:
    """Community-structured social graph with heavy-tailed hubs.

    The paper's central topological observation is that "keywords are
    often propagated among users that form tightly connected communities"
    (§4.1).  This generator makes that structure explicit:

    * nodes are partitioned into communities whose sizes are lognormal
      around *mean_community_size*;
    * inside a community, each node gets about *within_degree* random
      intra-community edges (dense, high clustering — the walk traps);
    * each node additionally draws about *inter_edges_per_node* long-range
      edges; a *hub_bias* fraction of their endpoints land on a small set
      of hub nodes chosen with Zipf weights, producing the heavy-tailed
      follower counts of real platforms (celebrities bridging communities).

    Combined with the cascade's weak-tie damping this yields term-induced
    subgraphs whose edge taxonomy matches Table 2: each keyword wave
    saturates the communities it reaches (intra/adjacent-level edges)
    while few edges connect different waves (rare cross-level edges).

    ``vectorized=True`` draws every random column in numpy batches — same
    model, same marginal distributions, an order of magnitude faster at
    10^4+ nodes — but a *different realization* for a given seed than the
    scalar path.  The default stays scalar so existing seeds reproduce
    byte-identical graphs; the columnar platform data planes opt in.
    """
    if n < 2:
        raise GraphError("need at least two nodes")
    if mean_community_size < 2 or within_degree < 1:
        raise GraphError("mean_community_size must be >= 2 and within_degree >= 1")
    if inter_edges_per_node < 0 or not 0.0 <= hub_bias <= 1.0:
        raise GraphError("inter_edges_per_node must be >= 0 and hub_bias in [0, 1]")
    if not 0.0 < hub_fraction < 1.0:
        raise GraphError("hub_fraction must be in (0, 1)")
    import math

    rng = ensure_rng(seed)
    if vectorized:
        return _community_graph_vectorized(
            n,
            mean_community_size,
            within_degree,
            inter_edges_per_node,
            hub_fraction,
            hub_bias,
            rng,
        )
    graph = SocialGraph(nodes=range(n))

    # Partition into lognormal-sized communities.
    communities: List[List[int]] = []
    cursor = 0
    mu = math.log(mean_community_size) - 0.18  # sigma=0.6 => mean ~ e^{mu+0.18}
    while cursor < n:
        size = max(3, int(rng.lognormvariate(mu, 0.6)))
        size = min(size, n - cursor)
        communities.append(list(range(cursor, cursor + size)))
        cursor += size

    # Dense intra-community wiring.
    for members in communities:
        size = len(members)
        if size < 2:
            continue
        p_in = min(within_degree / (size - 1), 1.0)
        for i, u in enumerate(members):
            for v in members[i + 1:]:
                if rng.random() < p_in:
                    graph.add_edge(u, v)

    # Hubs: a small Zipf-weighted set that attracts long-range edges.
    num_hubs = max(1, int(n * hub_fraction))
    hubs = rng.sample(range(n), num_hubs)
    hub_weights = [1.0 / (rank + 1) for rank in range(num_hubs)]

    community_of = {}
    for index, members in enumerate(communities):
        for node in members:
            community_of[node] = index

    for u in range(n):
        count = _rounded_count(inter_edges_per_node, rng)
        for _ in range(count):
            if rng.random() < hub_bias:
                v = rng.choices(hubs, weights=hub_weights)[0]
            else:
                v = rng.randrange(n)
            if v != u and community_of[v] != community_of[u]:
                graph.add_edge(u, v)
    return graph


def _rounded_count(mean: float, rng) -> int:
    """Integer draw with the given mean (floor + Bernoulli remainder)."""
    base = int(mean)
    return base + (1 if rng.random() < mean - base else 0)


def _community_graph_vectorized(
    n: int,
    mean_community_size: float,
    within_degree: float,
    inter_edges_per_node: float,
    hub_fraction: float,
    hub_bias: float,
    rng,
) -> SocialGraph:
    """Numpy batch-draw implementation of :func:`community_graph`.

    Mirrors the scalar path draw-for-draw in *distribution* — lognormal
    community sizes, per-pair Bernoulli intra-community edges, Zipf-hub or
    uniform long-range targets with same-community rejection — but pulls
    each random column as one vector, dedupes edges with ``np.unique`` and
    bulk-inserts the result.
    """
    import math

    import numpy as np

    nrng = np.random.default_rng(rng.getrandbits(128))
    mu = math.log(mean_community_size) - 0.18  # sigma=0.6 => mean ~ e^{mu+0.18}

    # Community sizes: batch lognormal draws, cut off once they cover n.
    # Sizes floor at 3, so ceil(n/3) draws always suffice.
    raw = np.maximum(3, nrng.lognormal(mu, 0.6, size=n // 3 + 1).astype(np.int64))
    ends = np.cumsum(raw)
    last = int(np.searchsorted(ends, n))
    sizes = raw[: last + 1]
    sizes[-1] = n - (int(ends[last - 1]) if last else 0)  # truncate the tail
    starts = np.concatenate([[0], np.cumsum(sizes)[:-1]])

    edge_lo: list = []
    edge_hi: list = []

    # Dense intra-community wiring: one Bernoulli per unordered pair.
    triu_cache: dict = {}
    for start, size in zip(starts.tolist(), sizes.tolist()):
        if size < 2:
            continue
        pair = triu_cache.get(size)
        if pair is None:
            pair = triu_cache[size] = np.triu_indices(size, k=1)
        p_in = min(within_degree / (size - 1), 1.0)
        mask = nrng.random(pair[0].size) < p_in
        edge_lo.append(pair[0][mask] + start)
        edge_hi.append(pair[1][mask] + start)

    # Hubs: a small Zipf-weighted set that attracts long-range edges.
    num_hubs = max(1, int(n * hub_fraction))
    hubs = nrng.choice(n, size=num_hubs, replace=False)
    hub_weights = 1.0 / (np.arange(num_hubs, dtype=np.float64) + 1.0)
    hub_weights /= hub_weights.sum()

    community_of = np.repeat(np.arange(sizes.size, dtype=np.int64), sizes)

    # Long-range edges: floor + Bernoulli count per node, hub-or-uniform
    # target per edge, self/same-community draws rejected (not redrawn).
    base = int(inter_edges_per_node)
    counts = np.full(n, base, dtype=np.int64)
    remainder = inter_edges_per_node - base
    if remainder > 0:
        counts += nrng.random(n) < remainder
    total = int(counts.sum())
    if total:
        sources = np.repeat(np.arange(n, dtype=np.int64), counts)
        use_hub = nrng.random(total) < hub_bias
        targets = np.empty(total, dtype=np.int64)
        num_hub_draws = int(use_hub.sum())
        targets[use_hub] = hubs[nrng.choice(num_hubs, size=num_hub_draws, p=hub_weights)]
        targets[~use_hub] = nrng.integers(0, n, size=total - num_hub_draws)
        keep = (sources != targets) & (community_of[sources] != community_of[targets])
        edge_lo.append(np.minimum(sources[keep], targets[keep]))
        edge_hi.append(np.maximum(sources[keep], targets[keep]))

    graph = SocialGraph(nodes=range(n))
    if edge_lo:
        lo = np.concatenate(edge_lo)
        hi = np.concatenate(edge_hi)
        keys = np.unique(lo * np.int64(n) + hi)  # dedupe unordered pairs
        graph.add_unique_edges(zip((keys // n).tolist(), (keys % n).tolist()))
    return graph


def level_of_planted_node(node: int, nodes_per_level: int) -> int:
    """Level index of *node* in a :func:`planted_level_graph`."""
    return node // nodes_per_level


def configuration_model(degrees: Sequence[int], seed: RandomLike = None) -> SocialGraph:
    """Simple-graph configuration model for a prescribed degree sequence.

    Stub matching with rejection of self-loops and parallel edges (the
    rejected stubs are dropped, so realised degrees are <= the requested
    ones — the standard "erased" variant).  Useful for synthesising a
    substrate matched to a real (e.g. SNAP) degree distribution without
    shipping the original edges.
    """
    if any(degree < 0 for degree in degrees):
        raise GraphError("degrees must be non-negative")
    if sum(degrees) % 2:
        raise GraphError("degree sequence must have even sum")
    rng = ensure_rng(seed)
    stubs: List[int] = []
    for node, degree in enumerate(degrees):
        stubs.extend([node] * degree)
    rng.shuffle(stubs)
    graph = SocialGraph(nodes=range(len(degrees)))
    for i in range(0, len(stubs) - 1, 2):
        u, v = stubs[i], stubs[i + 1]
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v)
    return graph


def complete_graph(n: int) -> SocialGraph:
    """K_n — used by tests as a worst-case tightly connected community."""
    graph = SocialGraph(nodes=range(n))
    for u in range(n):
        for v in range(u + 1, n):
            graph.add_edge(u, v)
    return graph


def star_graph(n: int) -> SocialGraph:
    """Hub node 0 connected to spokes ``1..n`` (celebrity pattern)."""
    graph = SocialGraph(nodes=range(n + 1))
    for v in range(1, n + 1):
        graph.add_edge(0, v)
    return graph


def path_graph(n: int) -> SocialGraph:
    """Path over ``0..n-1`` — the minimal level-by-level graph (d=1)."""
    graph = SocialGraph(nodes=range(n))
    for u in range(n - 1):
        graph.add_edge(u, u + 1)
    return graph
