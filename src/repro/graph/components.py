"""Connected components and the recall statistic of Table 2.

The paper's term-induced subgraph is useful only because its largest
connected component covers almost all matching users (average 94% recall,
Table 2).  :func:`recall_of_largest_component` computes exactly that
statistic for our simulated cascades.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, List, Optional, Set

from repro.errors import GraphError
from repro.graph.social_graph import SocialGraph


def bfs_reachable(graph: SocialGraph, source: int) -> Set[int]:
    """All nodes reachable from *source* (including it)."""
    if source not in graph:
        raise GraphError(f"node not present: {source}")
    seen = {source}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for v in graph.neighbors_unsafe(u):
            if v not in seen:
                seen.add(v)
                queue.append(v)
    return seen


def connected_components(graph: SocialGraph) -> List[Set[int]]:
    """All connected components, largest first."""
    remaining = set(graph.nodes())
    components: List[Set[int]] = []
    while remaining:
        source = next(iter(remaining))
        component = bfs_reachable(graph, source)
        components.append(component)
        remaining -= component
    components.sort(key=len, reverse=True)
    return components


def largest_component(graph: SocialGraph) -> Set[int]:
    """Node set of the largest connected component (empty for empty graph)."""
    components = connected_components(graph)
    return components[0] if components else set()


def recall_of_largest_component(graph: SocialGraph, relevant: Optional[Iterable[int]] = None) -> float:
    """Fraction of *relevant* nodes inside the largest component.

    With ``relevant=None`` every node of *graph* counts — the Table 2
    definition, where the term-induced subgraph's nodes are exactly the
    matching users.  Passing an explicit set lets callers measure recall of
    a *sampling frontier* against the full matching population instead.
    """
    relevant_set = set(relevant) if relevant is not None else set(graph.nodes())
    if not relevant_set:
        return 1.0
    biggest = largest_component(graph)
    return len(relevant_set & biggest) / len(relevant_set)


def is_connected(graph: SocialGraph) -> bool:
    """True when the graph has at most one connected component."""
    if graph.num_nodes == 0:
        return True
    return len(bfs_reachable(graph, next(iter(graph)))) == graph.num_nodes


def shortest_path_length(graph: SocialGraph, source: int, target: int) -> int:
    """Unweighted shortest-path length; raises if *target* unreachable."""
    if target not in graph:
        raise GraphError(f"node not present: {target}")
    if source == target:
        return 0
    seen = {source}
    queue = deque([(source, 0)])
    while queue:
        u, dist = queue.popleft()
        for v in graph.neighbors_unsafe(u):
            if v == target:
                return dist + 1
            if v not in seen:
                seen.add(v)
                queue.append((v, dist + 1))
    raise GraphError(f"no path from {source} to {target}")
