"""Process-shippable references to simulated platforms.

A :class:`~repro.platform.simulator.SimulatedPlatform` is not picklable
(keyword workloads carry intensity *functions*), so it cannot be sent to
a :class:`~concurrent.futures.ProcessPoolExecutor` worker directly.  A
:class:`PlatformRef` holds the live object in the parent and, the first
time it is pickled, spills the platform to a temporary ``.npz`` archive
via :mod:`repro.platform.serialization` — which persists exactly the
simulation *state* a worker needs.  Since the columnar data plane, the
spill dumps the frozen store's column arrays near-directly and workers
reload straight into a served :class:`~repro.platform.frozen.FrozenStore`,
so process fan-out pays no per-post rebuild.  Workers resolve the
reference by loading the archive once per process (a module-level cache
keyed by
path), so a pool amortises one load across any number of tasks.

In-process (serial/thread) use never touches the disk: ``resolve()``
returns the live object.
"""

from __future__ import annotations

import atexit
import os
import tempfile
from typing import Dict, Optional

from repro.platform.serialization import load_platform, save_platform
from repro.platform.simulator import SimulatedPlatform

_WORKER_CACHE: Dict[str, SimulatedPlatform] = {}


def _forget(path: str) -> None:
    try:
        os.unlink(path)
    except OSError:
        pass


class PlatformRef:
    """A platform handle that survives the trip to a worker process."""

    def __init__(self, platform: SimulatedPlatform) -> None:
        self._platform: Optional[SimulatedPlatform] = platform
        self._path: Optional[str] = None

    # ------------------------------------------------------------------
    def path(self) -> str:
        """Spill the platform to a temp ``.npz`` (once) and return the path."""
        if self._path is None:
            if self._platform is None:
                raise RuntimeError("PlatformRef has neither a platform nor a path")
            handle, path = tempfile.mkstemp(prefix="repro-platform-", suffix=".npz")
            os.close(handle)
            save_platform(self._platform, path)
            atexit.register(_forget, path)
            self._path = path
        return self._path

    def resolve(self) -> SimulatedPlatform:
        """The platform: live object in-process, cached load in workers."""
        if self._platform is not None:
            return self._platform
        assert self._path is not None
        if self._path not in _WORKER_CACHE:
            _WORKER_CACHE[self._path] = load_platform(self._path)
        return _WORKER_CACHE[self._path]

    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        return {"_platform": None, "_path": self.path()}

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
