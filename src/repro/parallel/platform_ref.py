"""Process-shippable references to simulated platforms.

A :class:`~repro.platform.simulator.SimulatedPlatform` is not picklable
(keyword workloads carry intensity *functions*), so it cannot be sent to
a :class:`~concurrent.futures.ProcessPoolExecutor` worker directly.  A
:class:`PlatformRef` holds the live object in the parent and, the first
time it is pickled, spills the platform to a temporary sharded layout
directory via :mod:`repro.platform.serialization` — which persists
exactly the simulation *state* a worker needs.

Platforms built on the ``"mmap"`` data plane never spill at all: their
frozen store already serves from a sharded directory
(``store.source_dir``), so ``path()`` hands workers that directory
directly and everyone — parent included — maps the same physical pages.
For RAM-resident platforms the spill is a near-direct column dump, and
workers reload it with ``np.memmap`` rather than materialising copies,
so an N-process pool still holds ~one platform's worth of column bytes.

Workers resolve the reference by opening the layout once per process (a
module-level cache keyed by path), so a pool amortises one load across
any number of tasks.  Cache entries whose backing directory has vanished
(a previous run's spill reclaimed) are evicted on the next resolve
rather than served stale.

Spills this class *creates* are reclaimed when the owning ref is
garbage-collected (``weakref.finalize``) and at interpreter exit as a
backstop; a ``source_dir`` it merely reuses is never deleted here.

In-process (serial/thread) use never touches the disk: ``resolve()``
returns the live object.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import weakref
from typing import Dict, Optional

from repro.platform.serialization import SHARDED_HEADER, load_platform, save_platform
from repro.platform.simulator import SimulatedPlatform

_WORKER_CACHE: Dict[str, SimulatedPlatform] = {}


def _forget_tree(path: str) -> None:
    shutil.rmtree(path, ignore_errors=True)


def _evict_stale() -> None:
    """Drop cached platforms whose backing layout no longer exists."""
    for path in [p for p in _WORKER_CACHE if not os.path.exists(p)]:
        del _WORKER_CACHE[path]


class PlatformRef:
    """A platform handle that survives the trip to a worker process."""

    def __init__(self, platform: SimulatedPlatform) -> None:
        self._platform: Optional[SimulatedPlatform] = platform
        self._path: Optional[str] = None
        self._finalizer: Optional[weakref.finalize] = None

    # ------------------------------------------------------------------
    def path(self) -> str:
        """The sharded layout workers should map; spills (once) if needed."""
        if self._path is None:
            if self._platform is None:
                raise RuntimeError("PlatformRef has neither a platform nor a path")
            source = getattr(self._platform.store, "source_dir", None)
            if source and os.path.isfile(os.path.join(source, SHARDED_HEADER)):
                # mmap-plane platform: its columns are already on disk.
                self._path = source
            else:
                path = tempfile.mkdtemp(prefix="repro-platform-")
                save_platform(self._platform, path)
                self._finalizer = weakref.finalize(self, _forget_tree, path)
                self._path = path
        return self._path

    def resolve(self) -> SimulatedPlatform:
        """The platform: live object in-process, cached load in workers."""
        if self._platform is not None:
            return self._platform
        assert self._path is not None
        _evict_stale()
        if self._path not in _WORKER_CACHE:
            _WORKER_CACHE[self._path] = load_platform(self._path)
        return _WORKER_CACHE[self._path]

    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        # The worker-side copy never owns the spill: no finalizer ships.
        return {"_platform": None, "_path": self.path(), "_finalizer": None}

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
