"""Parallel multi-walker execution engine.

Fans independent walks, replicates and pilot probes out over a worker
pool with deterministic per-walker RNG streams, so parallel results are
bit-reproducible and mergeable.  See ``docs/ARCHITECTURE.md`` for where
this layer sits in the system.
"""

from repro._rng import spawn_worker_seeds
from repro.parallel.engine import (
    DEFAULT_SHARDS,
    EXECUTORS,
    MIN_SHARD_BUDGET,
    ExecutionEngine,
    ParallelConfig,
)
from repro.parallel.platform_ref import PlatformRef
from repro.parallel.stats import WalkStats

# The walker-merge layer imports the estimators (repro.core.tarw/srw),
# which import repro.core.results, which imports repro.parallel.stats —
# resolving those names lazily keeps this package importable from inside
# repro.core without a cycle.
_WALKER_EXPORTS = (
    "merge_srw_samples",
    "merge_tarw_partials",
    "run_parallel_estimate",
    "split_budget",
)


def __getattr__(name: str):
    if name in _WALKER_EXPORTS:
        from repro.parallel import walkers

        return getattr(walkers, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "DEFAULT_SHARDS",
    "EXECUTORS",
    "MIN_SHARD_BUDGET",
    "ExecutionEngine",
    "ParallelConfig",
    "PlatformRef",
    "WalkStats",
    "merge_srw_samples",
    "merge_tarw_partials",
    "run_parallel_estimate",
    "split_budget",
    "spawn_worker_seeds",
]
