"""Shard-planned parallel execution of registered walker runs.

The estimators aggregate *independent* walks (bottom-top-bottom instances
for MA-TARW, chain samples for the SRW family — MA-SRW, rewired,
Walk-Not-Wait, frontier) into one Hansen–Hurwitz / ratio estimate, which
makes them embarrassingly parallel.  Any walker whose class declares a
``parallel_kind`` (see ``core/walker.py``) runs here.  This module
implements the decomposition:

1. **Plan** — split the query budget into ``n_shards`` logical walk
   shards (remainder spread over the first shards) and derive one
   deterministic RNG stream per shard via
   :func:`repro._rng.spawn_worker_seeds`.  The plan depends only on the
   master seed, the budget and the shard count — never on ``n_workers``.
2. **Execute** — each shard runs a *full serial* estimator over its own
   caching client (own :class:`~repro.api.accounting.CostMeter`, own
   response cache) against the shared read-only platform, through the
   :class:`~repro.parallel.engine.ExecutionEngine`.  Simulator-backed
   closures resolve to the threaded executor automatically.
3. **Merge** — partial Hansen–Hurwitz sums (TARW) or pooled post-burn-in
   samples (SRW) are combined **in shard order**, per-shard cost meters
   are summed into the merged accounting, and a
   :class:`~repro.parallel.stats.WalkStats` record is attached to the
   resulting :class:`~repro.core.results.EstimateResult`.

Because execution order cannot influence any shard's walk (streams are
pre-spawned; clients are private) and the merge order is fixed, the
merged estimate is identical for every worker count — the property the
test suite pins down.

Trade-off versus the classic single-walker run: shards do not share a
response cache, so a sharded run re-pays for regions multiple shards
visit.  What it buys is wall-clock overlap (real API latency, or real
CPUs under process execution for replicate fan-out) and mergeable,
per-worker cost accounting.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro._rng import spawn_worker_seeds
from repro.api.accounting import merge_cost_by_kind
from repro.api.client import CachingClient, SimulatedMicroblogClient
from repro.api.faults import FaultInjectingClient, FaultPlan
from repro.api.resilient import ResilientClient, RetryPolicy
from repro.core.graph_builder import QueryContext, rebuild_oracle
from repro.core.query import Aggregate
from repro.core.results import EstimateResult, TracePoint
from repro.errors import EstimationError
from repro.obs import NULL_OBS, MetricsRegistry, Observability, RecordingSink
from repro.parallel.engine import ExecutionEngine, ParallelConfig
from repro.parallel.stats import WalkStats
from repro.sampling.estimators import ratio_average
from repro.sampling.mark_recapture import katzir_count


# ----------------------------------------------------------------------
# planning helpers
# ----------------------------------------------------------------------
def split_budget(total: Optional[int], n_shards: int) -> List[Optional[int]]:
    """Partition *total* API calls over shards (None stays unbudgeted)."""
    if total is None:
        return [None] * n_shards
    if total < n_shards:
        raise EstimationError(
            f"budget {total} cannot be split over {n_shards} walk shards; "
            "lower n_shards or raise the budget"
        )
    base, remainder = divmod(total, n_shards)
    return [base + (1 if index < remainder else 0) for index in range(n_shards)]


def _simulator_backing(client) -> Tuple[object, str, float, Optional[int]]:
    """Platform + client settings needed to build per-shard clients.

    The wrapper layers (caching, resilient, fault-injecting) all pass
    ``platform``/``limiter``/``latency``/``meter`` through, so one hop
    below the cache reaches everything regardless of stack depth.
    """
    inner = getattr(client, "inner", client)
    platform = getattr(inner, "platform", None)
    if platform is None:
        raise EstimationError(
            "parallel execution requires a simulator-backed caching client "
            "(each walk shard needs its own client over the same platform)"
        )
    policy = getattr(getattr(inner, "limiter", None), "policy", "sleep")
    latency = getattr(inner, "latency", 0.0)
    # Split what is *left* to spend: auto interval selection (or any other
    # pre-shard work) may already have charged this client's meter.
    meter = getattr(inner, "meter", None)
    budget = None
    if meter is not None and meter.budget is not None:
        budget = meter.remaining
    return platform, policy, latency, budget


def _fault_spec(client) -> Tuple[Optional[FaultPlan], Optional[RetryPolicy]]:
    """Fault plan + retry policy found anywhere in the client stack.

    Per-shard clients rebuild the *same* robustness stack as the outer
    client.  Fault draws are keyed per request and per client, so every
    shard injects — and heals — identical faults for identical requests
    no matter how shards interleave across workers.
    """
    plan = None
    policy = None
    node = client
    while node is not None:
        if isinstance(node, FaultInjectingClient):
            plan = node.plan
        if isinstance(node, ResilientClient):
            policy = node.policy
        node = getattr(node, "inner", None)
    return plan, policy


def _shard_stack(
    platform,
    query,
    budget,
    policy,
    latency,
    oracle_template,
    fault_plan: Optional[FaultPlan] = None,
    retry_policy: Optional[RetryPolicy] = None,
    obs: Observability = NULL_OBS,
):
    inner = SimulatedMicroblogClient(
        platform, budget=budget, rate_limit_policy=policy, latency=latency, obs=obs
    )
    obs.bind_clock(inner.clock)
    if fault_plan is not None and fault_plan.active:
        inner = FaultInjectingClient(inner, fault_plan, obs=obs)
    if fault_plan is not None or retry_policy is not None:
        inner = ResilientClient(inner, retry_policy, obs=obs)
    client = CachingClient(inner, obs=obs)
    # Each shard's context resolves the flattened fast path independently
    # against its own stack (repro.api.fastpath): clean shards flatten,
    # fault-injected shards keep the layered clients they are testing.
    # Resolution is per-shard state only, so worker-count invariance of
    # the merged estimate is untouched.
    context = QueryContext(client, query, obs=obs)
    return client, context, rebuild_oracle(oracle_template, context)


# ----------------------------------------------------------------------
# shard execution
# ----------------------------------------------------------------------
def run_parallel_estimate(estimator) -> EstimateResult:
    """Entry point used by ``BaseWalker.estimate`` (see ``core/walker.py``).

    The walker's class declares its shard-merge strategy via
    ``parallel_kind``: ``"hh"`` merges Hansen–Hurwitz partial sums
    (``hh_partial``), ``"samples"`` pools post-burn-in samples
    (``shard_samples``).  Shard walkers are rebuilt as
    ``type(estimator)(context, oracle, config, seed=...)`` — the uniform
    Walker constructor — so every registered walker parallelises without
    this module naming it.
    """
    kind = getattr(type(estimator), "parallel_kind", None)
    if kind not in ("hh", "samples"):
        raise EstimationError(f"no parallel driver for {type(estimator).__name__}")
    return _run_sharded(estimator, kind=kind)


def _run_sharded(estimator, kind: str) -> EstimateResult:
    config: ParallelConfig = estimator.parallel
    platform, policy, latency, budget = _simulator_backing(estimator.context.client)
    fault_plan, retry_policy = _fault_spec(estimator.context.client)
    n_shards = config.resolved_shards(budget)
    outer_meter = getattr(estimator.context.client, "meter", None)
    outer_cost = outer_meter.query_total if outer_meter is not None else 0
    outer_by_kind = outer_meter.by_kind() if outer_meter is not None else {}
    budgets = split_budget(budget, n_shards)
    shard_seeds = spawn_worker_seeds(estimator.rng, n_shards)
    query = estimator.context.query
    oracle_template = estimator.oracle
    walker_config = estimator.config
    estimator_cls = type(estimator)
    merged_algorithm = estimator.algorithm_id()
    parent_obs: Observability = getattr(estimator, "obs", NULL_OBS)
    want_trace = parent_obs.trace is not None
    want_metrics = parent_obs.metrics is not None
    if want_trace:
        # Only shard-count and budget enter the trace: both are part of
        # the deterministic plan.  The worker count must never appear in
        # a record, or worker-count invariance of the bytes would break.
        parent_obs.trace.event("parallel.plan", shards=n_shards, budget=budget)
    start = time.perf_counter()

    def shard(index: int) -> Dict[str, object]:
        # Each shard records telemetry locally (own sink, own registry);
        # the parent replays/merges the buffers in shard order afterwards,
        # so the merged stream is identical for every worker count.
        shard_obs = NULL_OBS
        if want_trace or want_metrics:
            shard_obs = Observability(
                trace_sink=RecordingSink() if want_trace else None,
                metrics=MetricsRegistry() if want_metrics else None,
            )
        client, context, oracle = _shard_stack(
            platform,
            query,
            budgets[index],
            policy,
            latency,
            oracle_template,
            fault_plan=fault_plan,
            retry_policy=retry_policy,
            obs=shard_obs,
        )
        sub = estimator_cls(context, oracle, walker_config, seed=shard_seeds[index])
        result = sub.estimate()
        if kind == "hh":
            partial: object = sub.hh_partial()
            launched = int(
                result.diagnostics.get("instances", 0.0)
                + result.diagnostics.get("budget_aborted_instances", 0.0)
            )
            completed = int(result.diagnostics.get("instances", 0.0))
            samples = completed
        else:
            partial = sub.shard_samples()
            launched = int(result.diagnostics.get("steps", 0.0))
            completed = launched
            samples = len(partial)  # type: ignore[arg-type]
        return {
            "partial": partial,
            "cost_total": result.cost_total,
            "cost_by_kind": result.cost_by_kind,
            "num_samples": samples,
            "walks_launched": launched,
            "walks_completed": completed,
            "diagnostics": result.diagnostics,
            "simulated_wait": getattr(client.inner, "simulated_wait", 0.0),
            "cache_hits": float(client.hits),
            # Plain dicts/lists: they cross process boundaries unchanged.
            "trace_records": shard_obs.trace_records() if want_trace else None,
            "metrics_snapshot": (
                shard_obs.metrics.snapshot() if want_metrics else None
            ),
        }

    engine = ExecutionEngine(
        n_workers=config.n_workers,
        executor=config.executor,
        transient_retries=config.transient_retries,
    )
    outcomes = engine.run(shard, [(index,) for index in range(n_shards)])
    execute_seconds = engine.wall_seconds

    # Fold shard telemetry back in deterministic shard order — the same
    # discipline as the estimate merge below, and for the same reason.
    for index, outcome in enumerate(outcomes):
        if want_trace:
            parent_obs.trace.event(
                "parallel.shard",
                shard=index,
                cost=outcome["cost_total"],
                walks=outcome["walks_completed"],
            )
            parent_obs.trace.replay(outcome["trace_records"], shard=index)
        if want_metrics:
            parent_obs.metrics.merge_snapshot(outcome["metrics_snapshot"])

    merge_start = time.perf_counter()
    if kind == "hh":
        merged_value, trace, num_samples = _merge_tarw(query, outcomes, outer_cost)
    else:
        merged_value, trace, num_samples = _merge_srw(query, outcomes, outer_cost)
    algorithm = merged_algorithm
    merge_seconds = time.perf_counter() - merge_start

    # Pre-shard spend on the outer client (e.g. auto interval selection)
    # stays part of the run's accounting, as in the serial path.
    cost_by_kind = merge_cost_by_kind(
        [outer_by_kind] + [o["cost_by_kind"] for o in outcomes]
    )
    cost_total = outer_cost + sum(o["cost_total"] for o in outcomes)
    stats = WalkStats(
        executor=engine.resolved or "serial",
        n_workers=config.n_workers,
        n_shards=n_shards,
        walks_launched=sum(o["walks_launched"] for o in outcomes),
        walks_completed=sum(o["walks_completed"] for o in outcomes),
        queries_per_worker=tuple(o["cost_total"] for o in outcomes),
        wall_clock={
            "execute": execute_seconds,
            "merge": merge_seconds,
            "total": time.perf_counter() - start,
        },
    )
    diagnostics = _merge_diagnostics([o["diagnostics"] for o in outcomes])
    diagnostics.update(stats.as_diagnostics())
    diagnostics["simulated_wait_seconds"] = sum(o["simulated_wait"] for o in outcomes)
    diagnostics["cache_hits"] = sum(o["cache_hits"] for o in outcomes)
    return EstimateResult(
        query=query,
        algorithm=algorithm,
        value=merged_value,
        cost_total=cost_total,
        cost_by_kind=cost_by_kind,
        trace=trace,
        num_samples=num_samples,
        diagnostics=diagnostics,
        walk_stats=stats,
    )


_ADDITIVE_DIAGNOSTICS = frozenset(
    {
        "instances",
        "budget_aborted_instances",
        "fault_aborted_instances",
        "fault_step_retries",
        "fault_restarts",
        "zero_probability_drops",
        "p_pool_nodes",
        "steps",
        "dead_end_restarts",
        "virtual_edges",
        "probe_calls",
        "probe_resolved",
        "probe_unresolved",
    }
)


def _merge_diagnostics(per_shard: Sequence[Dict[str, float]]) -> Dict[str, float]:
    """Sum additive counters, average everything else across shards."""
    merged: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    for diagnostics in per_shard:
        for key, value in diagnostics.items():
            merged[key] = merged.get(key, 0.0) + value
            counts[key] = counts.get(key, 0) + 1
    for key in list(merged):
        if key not in _ADDITIVE_DIAGNOSTICS:
            merged[key] /= counts[key]
    return merged


# ----------------------------------------------------------------------
# merges
# ----------------------------------------------------------------------
def merge_tarw_partials(query, partials: Sequence[Dict[str, float]]) -> Optional[float]:
    """Pooled Hansen–Hurwitz estimate from per-walker partial sums.

    Each partial carries instance-unnormalised accumulators (see
    ``MATARWEstimator.hh_partial``); pooling adds them and divides once
    by the pooled instance count — equivalent to instance-weighting each
    walker's own estimate, and exactly the serial formula when a single
    partial is passed.
    """
    instances = sum(p["instances"] for p in partials)
    if instances <= 0:
        return None
    divisor = partials[0]["divisor"]
    total_sum = sum(p["sum"] for p in partials)
    total_count = sum(p["count"] for p in partials)
    raw_sum = sum(p["raw_sum"] for p in partials)
    raw_count = sum(p["raw_count"] for p in partials)
    if query.aggregate is Aggregate.SUM:
        return total_sum / (divisor * instances)
    if query.aggregate is Aggregate.COUNT:
        return total_count / (divisor * instances)
    if raw_count == 0:
        return None
    return raw_sum / raw_count


def _merge_tarw(
    query, outcomes, base_cost: int = 0
) -> Tuple[Optional[float], List[TracePoint], int]:
    partials = [o["partial"] for o in outcomes]
    trace: List[TracePoint] = []
    cumulative_cost = base_cost
    for index in range(len(outcomes)):
        cumulative_cost += outcomes[index]["cost_total"]
        trace.append(
            TracePoint(cumulative_cost, merge_tarw_partials(query, partials[: index + 1]))
        )
    value = merge_tarw_partials(query, partials)
    num_samples = sum(int(p["instances"]) for p in partials)
    return value, trace, num_samples


def merge_srw_samples(
    query, samples: Sequence[Tuple[int, int, Optional[bool], float]]
) -> Optional[float]:
    """Pooled SRW estimate from per-walker post-burn-in samples.

    Mirrors the serial assembly: AVG is the degree-debiased ratio over
    condition-matching samples, COUNT is the Katzir population of the
    pooled chains times the debiased matching fraction, SUM the product.
    Samples whose condition evaluation was unaffordable (``matches`` is
    None) only contribute to the Katzir population, exactly as in the
    serial estimator.
    """
    if len(samples) < 2:
        return None
    try:
        if query.aggregate is Aggregate.AVG:
            return _srw_avg(samples)
        nodes = [node for node, _, _, _ in samples]
        degrees = [degree for _, degree, _, _ in samples]
        population = katzir_count(nodes, degrees).population
        indicator = [1.0 if m else 0.0 for _, _, m, _ in samples if m is not None]
        affordable = [d for _, d, m, _ in samples if m is not None]
        count = population * ratio_average(indicator, affordable)
        if query.aggregate is Aggregate.COUNT:
            return count
        return count * _srw_avg(samples)
    except EstimationError:
        return None


def _srw_avg(samples) -> float:
    values = [f for _, _, m, f in samples if m]
    degrees = [d for _, d, m, _ in samples if m]
    return ratio_average(values, degrees)


def _merge_srw(
    query, outcomes, base_cost: int = 0
) -> Tuple[Optional[float], List[TracePoint], int]:
    trace: List[TracePoint] = []
    pooled: List[Tuple[int, int, Optional[bool], float]] = []
    cumulative_cost = base_cost
    for outcome in outcomes:
        pooled.extend(outcome["partial"])
        cumulative_cost += outcome["cost_total"]
        trace.append(TracePoint(cumulative_cost, merge_srw_samples(query, pooled)))
    return merge_srw_samples(query, pooled), trace, len(pooled)
