"""The worker-pool execution engine.

Everything the paper's evaluation repeats — MA-TARW walk instances, SRW
chains, benchmark replicates, pilot walks — is embarrassingly parallel:
runs share no mutable state beyond the read-only platform.  The engine
fans an ordered list of tasks over a pool and returns results **in task
order**, so merges downstream are deterministic regardless of completion
interleaving.

Executor selection (``executor=`` on :class:`ExecutionEngine`):

* ``"process"`` — :class:`~concurrent.futures.ProcessPoolExecutor`; the
  only way to real CPU parallelism in CPython.  Requires the task
  function and arguments to be picklable (ship platforms through
  :class:`~repro.parallel.platform_ref.PlatformRef`).
* ``"thread"`` — :class:`~concurrent.futures.ThreadPoolExecutor`; shares
  the live in-process platform, so it is the natural home for
  simulator-backed shard runs, and it genuinely overlaps any real
  per-call API latency (the "Walk, Not Wait" effect) even though pure
  Python compute serialises on the GIL.
* ``"auto"`` (default) — probe-pickle the first task and pick
  ``"process"`` when it round-trips, else fall back to ``"thread"``.
  Closures over live simulators therefore run threaded without the
  caller doing anything.
* ``"serial"`` — run inline, in order.  ``n_workers <= 1`` or a single
  task resolves to this too.

Determinism contract: the engine never influences *what* a task computes
— tasks carry their own pre-spawned RNG streams (see
:func:`repro._rng.spawn_worker_seeds`) — and result order is submission
order, so any worker count yields byte-identical merged results for
deterministic tasks.
"""

from __future__ import annotations

import pickle
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.errors import ReproError, TransientAPIError

EXECUTORS = ("auto", "process", "thread", "serial")

DEFAULT_SHARDS = 8
"""Logical walk shards a parallel estimator partitions its budget into.

Fixed independently of ``n_workers`` on purpose: the shard plan (budget
split, RNG streams, merge order) is a function of the master seed, the
budget and the shard count only, so ``n_workers=1`` and ``n_workers=8``
produce the identical estimate — workers only change how many shards run
at once.
"""

MIN_SHARD_BUDGET = 2_000
"""Floor on per-shard API calls before the default shard count backs off.

Shards run on private clients (no shared response cache), so each one
re-pays graph discovery before its walks contribute; below roughly this
many calls a TARW shard spends everything on coverage and its walks abort
on budget exhaustion, biasing the merged estimate.  The budget is part of
the deterministic plan, so adapting to it never breaks worker-count
invariance — an explicit ``n_shards`` overrides the backoff.
"""


@dataclass(frozen=True)
class ParallelConfig:
    """How an estimator should decompose and execute its walk budget."""

    n_workers: int = 1
    n_shards: Optional[int] = None
    """None → :data:`DEFAULT_SHARDS`.  Changing the shard count changes
    the decomposition (and hence the estimate); changing ``n_workers``
    never does."""
    executor: str = "auto"
    transient_retries: int = 0
    """Shard-level fault recovery: re-run a whole shard whose task raised
    a :class:`TransientAPIError` this many times before propagating.

    Off by default because the estimators already recover internally
    (step retries + instance checkpointing) and a shard re-run repeats
    its deterministic fault draws verbatim — it only helps against
    *nondeterministic* backends (a future live-API client), which is the
    scenario this knob exists for."""

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ReproError("n_workers must be >= 1")
        if self.n_shards is not None and self.n_shards < 1:
            raise ReproError("n_shards must be >= 1")
        if self.executor not in EXECUTORS:
            raise ReproError(f"executor must be one of {EXECUTORS}")
        if self.transient_retries < 0:
            raise ReproError("transient_retries must be >= 0")

    def resolved_shards(self, budget: Optional[int] = None) -> int:
        """Shard count for a run with *budget* remaining API calls.

        Explicit ``n_shards`` always wins; the default backs off from
        :data:`DEFAULT_SHARDS` so no shard drops below
        :data:`MIN_SHARD_BUDGET` calls (see its docstring).
        """
        if self.n_shards is not None:
            return self.n_shards
        if budget is None:
            return DEFAULT_SHARDS
        return max(1, min(DEFAULT_SHARDS, budget // MIN_SHARD_BUDGET))


def _timed_call(fn: Callable, args: Tuple) -> Tuple[Any, float]:
    start = time.perf_counter()
    result = fn(*args)
    return result, time.perf_counter() - start


class _TransientRetry:
    """Picklable task wrapper that re-runs transiently failed tasks.

    A module-level class (not a closure) so a wrapped task stays
    process-executable whenever the underlying task is.  Retries only
    the :class:`TransientAPIError` family; all other exceptions, and a
    failure that persists past the retry budget, propagate unchanged.
    """

    def __init__(self, fn: Callable, retries: int) -> None:
        self.fn = fn
        self.retries = retries

    def __call__(self, *args):
        for _ in range(self.retries):
            try:
                return self.fn(*args)
            except TransientAPIError:
                continue
        return self.fn(*args)


class ExecutionEngine:
    """Ordered fan-out of tasks over serial/thread/process execution.

    After :meth:`run`, ``resolved`` holds the executor actually used,
    ``task_seconds`` the per-task wall times (task order) and
    ``wall_seconds`` the end-to-end fan-out time.
    """

    def __init__(
        self, n_workers: int = 1, executor: str = "auto", transient_retries: int = 0
    ) -> None:
        if n_workers < 1:
            raise ReproError("n_workers must be >= 1")
        if executor not in EXECUTORS:
            raise ReproError(f"executor must be one of {EXECUTORS}")
        if transient_retries < 0:
            raise ReproError("transient_retries must be >= 0")
        self.n_workers = n_workers
        self.executor = executor
        self.transient_retries = transient_retries
        """See :attr:`ParallelConfig.transient_retries` — whole-task
        re-runs on :class:`TransientAPIError`, via :class:`_TransientRetry`."""
        self.resolved: Optional[str] = None
        self.task_seconds: List[float] = []
        self.wall_seconds: float = 0.0

    # ------------------------------------------------------------------
    def run(self, fn: Callable, tasks: Sequence[Tuple]) -> List[Any]:
        """Apply *fn* to every argument tuple; results in task order.

        A task raising propagates the first exception in task order (the
        remaining futures are still drained so the pool shuts down
        cleanly).
        """
        tasks = [tuple(task) for task in tasks]
        if self.transient_retries > 0:
            fn = _TransientRetry(fn, self.transient_retries)
        start = time.perf_counter()
        try:
            if not tasks:
                self.resolved = "serial"
                return []
            mode = self._resolve(fn, tasks)
            if mode == "process":
                try:
                    timed = self._run_pool(ProcessPoolExecutor, fn, tasks)
                except (BrokenProcessPool, pickle.PicklingError):
                    # e.g. an unpicklable *result*; threads always work.
                    mode = "thread"
                    timed = self._run_pool(ThreadPoolExecutor, fn, tasks)
            elif mode == "thread":
                timed = self._run_pool(ThreadPoolExecutor, fn, tasks)
            else:
                timed = [_timed_call(fn, task) for task in tasks]
            self.resolved = mode
            self.task_seconds = [seconds for _, seconds in timed]
            return [result for result, _ in timed]
        finally:
            self.wall_seconds = time.perf_counter() - start

    # ------------------------------------------------------------------
    def _resolve(self, fn: Callable, tasks: Sequence[Tuple]) -> str:
        if self.executor == "serial" or self.n_workers <= 1 or len(tasks) <= 1:
            return "serial"
        if self.executor == "thread":
            return "thread"
        try:
            pickle.dumps((fn, tasks[0]))
            return "process"
        except Exception:
            if self.executor == "process":
                raise ReproError(
                    "tasks are not picklable for process execution "
                    "(closures over live simulators?); use executor='thread'"
                ) from None
            return "thread"  # the documented simulator-backed fallback

    def _run_pool(self, pool_cls, fn: Callable, tasks: Sequence[Tuple]) -> List[Tuple[Any, float]]:
        workers = min(self.n_workers, len(tasks))
        with pool_cls(max_workers=workers) as pool:
            futures = [pool.submit(_timed_call, fn, task) for task in tasks]
            results: List[Tuple[Any, float]] = []
            error: Optional[BaseException] = None
            for future in futures:
                try:
                    results.append(future.result())
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    if error is None:
                        error = exc
            if error is not None:
                raise error
            return results
