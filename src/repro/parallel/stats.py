"""Per-run instrumentation for parallel walk execution.

:class:`WalkStats` is the lightweight record every engine-dispatched run
attaches to its :class:`~repro.core.results.EstimateResult`: how the run
was decomposed (shards, workers, resolved executor), how many walks were
launched and completed, the query spend of each worker, and wall-clock
per phase.  It deliberately imports nothing from the rest of the library
so any layer can depend on it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple


@dataclass
class WalkStats:
    """Execution record of one parallel (or shard-planned serial) run."""

    executor: str
    """Resolved executor: ``"process"``, ``"thread"`` or ``"serial"``."""
    n_workers: int
    """OS workers requested (actual concurrency, not shard count)."""
    n_shards: int
    """Logical walk shards the budget was partitioned into.  Fixed
    independently of ``n_workers`` so estimates are identical across
    worker counts."""
    walks_launched: int = 0
    walks_completed: int = 0
    queries_per_worker: Tuple[int, ...] = ()
    """API calls charged by each shard's private meter, in shard order.
    Their sum is the run's merged total cost."""
    wall_clock: Dict[str, float] = field(default_factory=dict)
    """Seconds per phase, e.g. ``{"execute": ..., "merge": ..., "total": ...}``."""

    def as_diagnostics(self) -> Dict[str, float]:
        """Flatten the scalar fields for ``EstimateResult.diagnostics``."""
        flat = {
            "parallel_shards": float(self.n_shards),
            "parallel_workers": float(self.n_workers),
            "walks_launched": float(self.walks_launched),
            "walks_completed": float(self.walks_completed),
        }
        for phase, seconds in self.wall_clock.items():
            flat[f"wall_{phase}_seconds"] = seconds
        return flat

    def summary(self) -> str:
        """One-line rendering for the CLI."""
        total = self.wall_clock.get("total", 0.0)
        spend = "+".join(str(q) for q in self.queries_per_worker) or "0"
        return (
            f"{self.n_shards} shards on {self.n_workers} {self.executor} worker(s), "
            f"{self.walks_completed}/{self.walks_launched} walks, "
            f"cost {spend}, {total:.2f}s"
        )
