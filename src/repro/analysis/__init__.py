"""Offline analysis tools: exact computations on small level graphs.

These are *evaluator-side* tools (like :mod:`repro.groundtruth`): they see
whole graphs, not the restricted API, and exist to validate the paper's
theory — most importantly Theorem 5.1's variance expression and the
unbiasedness of Algorithm 2's ESTIMATE-p — by exact enumeration on graphs
small enough to enumerate.
"""

from repro.analysis.theorem51 import (
    LevelDag,
    enumerate_estimate_paths,
    enumerate_instances,
    exact_estimate_p_distribution,
    exact_instance_variance,
    exact_selection_probabilities,
    theorem51_variance_as_printed,
)

__all__ = [
    "LevelDag",
    "exact_selection_probabilities",
    "enumerate_estimate_paths",
    "enumerate_instances",
    "exact_estimate_p_distribution",
    "exact_instance_variance",
    "theorem51_variance_as_printed",
]
