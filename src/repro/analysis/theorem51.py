"""Exact analysis of the topology-aware walk on small level DAGs
(Theorem 5.1 and the unbiasedness of Algorithm 2).

A :class:`LevelDag` is a fully known level-by-level graph: node levels,
the implied up/down adjacency, and the seed set.  On graphs small enough
to enumerate we can compute *exactly*:

* the selection probabilities ``p_up`` / ``p_down`` (the Eq. 6 fixed
  point, by dynamic programming in level order);
* the full distribution of Algorithm 2's ESTIMATE-p output for any node —
  every downward path, its probability, and its ω value — which proves
  (numerically, path by path) that ``E[ω] = p_up(u)``;
* the variance expression of Theorem 5.1 as printed, with ``P(u)`` the
  set of ESTIMATE-p paths from ``u``.

These are evaluator-side computations (exponential in the worst case,
guarded by a path-count limit); the estimators never use them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Set, Tuple

from repro.errors import EstimationError, GraphError
from repro.graph.social_graph import SocialGraph

MAX_PATHS = 200_000


@dataclass
class LevelDag:
    """A fully known level-by-level graph with a seed set.

    ``graph`` must contain only inter-level edges with respect to
    ``levels`` (intra-level edges are rejected — build via
    :func:`repro.core.levels.level_by_level_subgraph` first).
    """

    graph: SocialGraph
    levels: Mapping[int, int]
    seeds: Set[int]

    def __post_init__(self) -> None:
        for node in self.graph.nodes():
            if node not in self.levels:
                raise GraphError(f"node {node} has no level")
        for u, v in self.graph.edges():
            if self.levels[u] == self.levels[v]:
                raise GraphError(f"intra-level edge {u}-{v}: not a level DAG")
        unknown_seeds = set(self.seeds) - set(self.graph.nodes())
        if unknown_seeds:
            raise GraphError(f"seeds not in graph: {sorted(unknown_seeds)[:3]}")
        if not self.seeds:
            raise GraphError("need at least one seed")

    def up(self, node: int) -> List[int]:
        own = self.levels[node]
        return sorted(v for v in self.graph.neighbors_unsafe(node) if self.levels[v] < own)

    def down(self, node: int) -> List[int]:
        own = self.levels[node]
        return sorted(v for v in self.graph.neighbors_unsafe(node) if self.levels[v] > own)

    def start_probability(self, node: int) -> float:
        return 1.0 / len(self.seeds) if node in self.seeds else 0.0


def exact_selection_probabilities(dag: LevelDag) -> Tuple[Dict[int, float], Dict[int, float]]:
    """The Eq. 6 fixed point: exact ``(p_up, p_down)`` maps."""
    nodes = dag.graph.nodes()
    p_up: Dict[int, float] = {}
    for node in sorted(nodes, key=lambda n: -dag.levels[n]):
        value = dag.start_probability(node)
        for below in dag.down(node):
            ups_of_below = dag.up(below)
            if p_up[below] > 0:
                value += p_up[below] / len(ups_of_below)
        p_up[node] = value
    p_down: Dict[int, float] = {}
    for node in sorted(nodes, key=lambda n: dag.levels[n]):
        ups = dag.up(node)
        if not ups:
            p_down[node] = p_up[node]
            continue
        value = 0.0
        for above in ups:
            downs_of_above = dag.down(above)
            if p_down[above] > 0:
                value += p_down[above] / len(downs_of_above)
        p_down[node] = value
    return p_up, p_down


@dataclass(frozen=True)
class EstimatePath:
    """One possible ESTIMATE-p execution: its path, probability, and ω."""

    nodes: Tuple[int, ...]
    probability: float
    omega: float


def enumerate_estimate_paths(dag: LevelDag, node: int) -> List[EstimatePath]:
    """Every downward path Algorithm 2 can take from *node*.

    Each recursion step picks a uniform member of ∆(current), so a path's
    probability is Π 1/|∆(v_i)|; its ω value accumulates start mass times
    the telescoped branching factor, exactly as in the estimator.
    """
    results: List[EstimatePath] = []

    def recurse(current: int, trail: Tuple[int, ...], probability: float,
                factor: float, omega: float) -> None:
        if len(results) > MAX_PATHS:
            raise EstimationError("too many ESTIMATE-p paths to enumerate")
        omega = omega + factor * dag.start_probability(current)
        downs = dag.down(current)
        if not downs:
            results.append(EstimatePath(trail + (current,), probability, omega))
            return
        for below in downs:
            new_factor = factor * len(downs) / len(dag.up(below))
            recurse(below, trail + (current,), probability / len(downs), new_factor, omega)

    recurse(node, (), 1.0, 1.0, 0.0)
    return results


def exact_estimate_p_distribution(dag: LevelDag, node: int) -> Tuple[float, float]:
    """(mean, variance) of Algorithm 2's ω for *node*, by enumeration.

    The mean must equal ``p_up(node)`` exactly — the unbiasedness claim of
    §5.2 — which the test suite asserts to float precision.
    """
    paths = enumerate_estimate_paths(dag, node)
    mean = sum(p.probability * p.omega for p in paths)
    variance = sum(p.probability * (p.omega - mean) ** 2 for p in paths)
    return mean, variance


def theorem51_variance_as_printed(
    dag: LevelDag,
    f: Mapping[int, float],
    instances: int,
) -> float:
    """Theorem 5.1's σ² *as printed*, with P(u) = ESTIMATE-p paths from u.

    ``f`` maps each node satisfying the aggregate's condition to its
    measure value (nodes absent from ``f`` are outside the condition).
    ``Q_A`` is the true aggregate Σ f(u).  The theorem's ``V`` term sums
    ``p(u)·p(ρ)·(p(u)/ω(ρ) − 1)²`` over condition nodes and their paths;
    paths with ω = 0 are skipped (the estimator drops them), matching the
    implementation's behaviour.

    **Caution**: the printed expression lacks the cross-covariance terms
    between the nodes one instance visits together, and on a deterministic
    chain it evaluates to ``Σf² − Q² < 0`` — an impossible variance.  The
    test suite documents this; use :func:`exact_instance_variance` for the
    true variance of the phase-sum estimator.
    """
    if instances < 1:
        raise EstimationError("instances must be >= 1")
    p_up, _ = exact_selection_probabilities(dag)
    q_a = float(sum(f.values()))
    v_term = 0.0
    for node in f:
        p_node = p_up.get(node, 0.0)
        if p_node <= 0:
            continue
        for path in enumerate_estimate_paths(dag, node):
            if path.omega <= 0:
                continue
            v_term += p_node * path.probability * (p_node / path.omega - 1.0) ** 2
    total = 0.0
    for node, value in f.items():
        p_node = p_up.get(node, 0.0)
        if p_node <= 0:
            continue
        total += (v_term + 1.0) * value * value / (instances * p_node)
    return total - q_a * q_a / instances


# Back-compatible alias used by older callers/tests.
theorem51_variance = theorem51_variance_as_printed


@dataclass(frozen=True)
class WalkInstance:
    """One possible bottom-top-bottom instance: paths and probability."""

    up_path: Tuple[int, ...]
    down_path: Tuple[int, ...]
    probability: float


def enumerate_instances(dag: LevelDag) -> List[WalkInstance]:
    """Every possible bottom-top-bottom walk instance with its probability.

    The start seed is uniform over the seed set; each upward transition is
    uniform over ∇(current); at the local root the walk reverses and each
    downward transition is uniform over ∆(current).
    """
    instances: List[WalkInstance] = []

    def descend(current: int, trail: Tuple[int, ...], probability: float,
                up_path: Tuple[int, ...]) -> None:
        if len(instances) > MAX_PATHS:
            raise EstimationError("too many walk instances to enumerate")
        trail = trail + (current,)
        downs = dag.down(current)
        if not downs:
            instances.append(WalkInstance(up_path, trail, probability))
            return
        for below in downs:
            descend(below, trail, probability / len(downs), up_path)

    def ascend(current: int, trail: Tuple[int, ...], probability: float) -> None:
        trail = trail + (current,)
        ups = dag.up(current)
        if not ups:
            descend(current, (), probability, trail)
            return
        for above in ups:
            ascend(above, trail, probability / len(ups))

    start_probability = 1.0 / len(dag.seeds)
    for seed in sorted(dag.seeds):
        ascend(seed, (), start_probability)
    return instances


def exact_instance_variance(dag: LevelDag, f: Mapping[int, float]) -> Tuple[float, float]:
    """(mean, variance) of one phase-sum instance estimate, exactly.

    The instance estimate (with *exact* selection probabilities, i.e. the
    estimator MA-TARW converges to as its probability pools mature) is

        X = ( Σ_{u ∈ up path} f(u)/p_up(u) + Σ_{u ∈ down path} f(u)/p_down(u) ) / 2

    and this function computes E[X] and Var(X) by enumerating every
    possible instance.  E[X] must equal Σ f(u) over the supports — the
    unbiasedness the phase-sum combine is built on — and averaging r
    independent instances divides the variance by r.
    """
    p_up, p_down = exact_selection_probabilities(dag)
    total_mean = 0.0
    total_second = 0.0
    for instance in enumerate_instances(dag):
        x_up = sum(
            f.get(node, 0.0) / p_up[node]
            for node in instance.up_path
            if p_up.get(node, 0.0) > 0
        )
        x_down = sum(
            f.get(node, 0.0) / p_down[node]
            for node in instance.down_path
            if p_down.get(node, 0.0) > 0
        )
        x = (x_up + x_down) / 2.0
        total_mean += instance.probability * x
        total_second += instance.probability * x * x
    return total_mean, total_second - total_mean * total_mean
