"""Exact ground-truth aggregates from the authoritative store.

The paper evaluates its estimators against a Streaming-API-derived
ground-truth corpus (§3.2, §6.1).  With a simulated platform we can do
strictly better: compute the aggregate exactly over the full store.  Every
benchmark's relative error is measured against these values.

Ground truth sees *true* profile attributes (including gender on platforms
whose API hides it) — it plays the role of the omniscient evaluator, not
of an estimator.
"""

from __future__ import annotations

from typing import List

from repro.core.query import Aggregate, AggregateQuery, UserView
from repro.errors import EstimationError
from repro.platform.store import MicroblogStore


def user_view_from_store(store: MicroblogStore, user_id: int, query: AggregateQuery) -> UserView:
    """Omniscient :class:`UserView` of *user_id* for *query*."""
    profile = store.profile(user_id)
    matching = query.filter_matching_posts(store.timeline(user_id))
    return UserView(
        user_id=user_id,
        display_name=profile.display_name,
        followers=profile.followers,
        gender=profile.gender,
        age=profile.age,
        matching_posts=matching,
    )


def matching_users(store: MicroblogStore, query: AggregateQuery) -> List[UserView]:
    """Views of every user satisfying the query condition."""
    views = []
    for user_id in store.users_mentioning(query.keyword, query.window_start, query.window_end):
        view = user_view_from_store(store, user_id, query)
        if query.matches(view):
            views.append(view)
    return views


def exact_value(store: MicroblogStore, query: AggregateQuery) -> float:
    """The true answer to *query* over the complete platform data.

    Raises :class:`EstimationError` for an AVG over an empty population
    (undefined); COUNT and SUM of an empty population are 0.
    """
    views = matching_users(store, query)
    if query.aggregate is Aggregate.COUNT:
        return float(len(views))
    values = [query.value(view) for view in views]
    if query.aggregate is Aggregate.SUM:
        return float(sum(values))
    if not values:
        raise EstimationError(f"AVG undefined: no users match {query.describe()}")
    return sum(values) / len(values)


def relative_error(estimate: float, truth: float) -> float:
    """|estimate - truth| / |truth| — the paper's accuracy measure (§2)."""
    if truth == 0:
        raise EstimationError("relative error undefined for zero ground truth")
    return abs(estimate - truth) / abs(truth)
