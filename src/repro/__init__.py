"""repro — reproduction of "Aggregate Estimation Over a Microblog Platform".

SIGMOD 2014, Thirumuruganathan, Zhang, Hristidis & Das.

Quickstart::

    from repro import (
        PlatformConfig, build_platform, MicroblogAnalyzer, count_users,
        exact_value, relative_error,
    )

    platform = build_platform(PlatformConfig(num_users=5_000, seed=7))
    analyzer = MicroblogAnalyzer(platform, algorithm="ma-tarw")
    query = count_users("privacy")
    result = analyzer.estimate(query, budget=10_000)
    truth = exact_value(platform.store, query)
    print(result.value, truth, relative_error(result.value, truth))

Layering (see DESIGN.md):

* :mod:`repro.graph` — graph substrate (generators, conductance, SNAP IO);
* :mod:`repro.platform` — simulated microblog platform and cascades;
* :mod:`repro.api` — the restricted, rate-limited, cost-metered API;
* :mod:`repro.sampling` — walks, diagnostics and classical estimators;
* :mod:`repro.core` — MICROBLOG-ANALYZER (MA-SRW, MA-TARW, M&R);
* :mod:`repro.groundtruth` — exact answers for error measurement;
* :mod:`repro.bench` — shared experiment drivers for ``benchmarks/``.
"""

from repro.core.analyzer import MicroblogAnalyzer
from repro.core.query import (
    Aggregate,
    AggregateQuery,
    CONSTANT_ONE,
    DISPLAY_NAME_LENGTH,
    FOLLOWERS,
    MATCHING_POST_COUNT,
    MEAN_LIKES,
    Measure,
    UserView,
    avg_of,
    count_users,
    gender_is,
    sum_of,
)
from repro.core.confidence import ConfidenceResult, combine_replicates
from repro.core.results import EstimateResult
from repro.core.sql import parse_query
from repro.errors import (
    APIError,
    BudgetExhaustedError,
    EstimationError,
    GraphError,
    PlatformError,
    QueryError,
    RateLimitError,
    ReproError,
)
from repro.groundtruth import exact_value, relative_error
from repro.platform.profiles import GOOGLE_PLUS, TUMBLR, TWITTER
from repro.platform.serialization import load_platform, save_platform
from repro.platform.simulator import PlatformConfig, SimulatedPlatform, build_platform

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "MicroblogAnalyzer",
    "Aggregate",
    "AggregateQuery",
    "Measure",
    "UserView",
    "CONSTANT_ONE",
    "FOLLOWERS",
    "DISPLAY_NAME_LENGTH",
    "MATCHING_POST_COUNT",
    "MEAN_LIKES",
    "count_users",
    "avg_of",
    "sum_of",
    "gender_is",
    "EstimateResult",
    "ConfidenceResult",
    "combine_replicates",
    "parse_query",
    "exact_value",
    "relative_error",
    "save_platform",
    "load_platform",
    "PlatformConfig",
    "SimulatedPlatform",
    "build_platform",
    "TWITTER",
    "GOOGLE_PLUS",
    "TUMBLR",
    "ReproError",
    "GraphError",
    "PlatformError",
    "APIError",
    "BudgetExhaustedError",
    "RateLimitError",
    "QueryError",
    "EstimationError",
]
