"""Immutable columnar (SoA) serving form of the platform store.

:class:`FrozenStore` is what :meth:`MicroblogStore.freeze` compiles to and
what every estimator run should read from.  Where the mutable store keeps
per-user lists of :class:`~repro.platform.posts.Post` objects and python
tuple logs, the frozen store keeps six flat numpy arrays in post-id order
plus three compiled indexes:

* a timeline permutation + ``indptr`` (posts grouped per user, time-sorted
  once at freeze, never re-sorted);
* per-keyword logs as parallel ``(times, users, post_ids)`` arrays sorted
  by the legacy ``(t, u, pid)`` tuple order, so search-window slicing is a
  pair of ``searchsorted`` calls;
* per-keyword first-mention maps, compiled in one ``unique`` pass — the
  ground truth behind the paper's level-by-level structure (§4.2.1).

Read methods mirror ``MicroblogStore``'s API bit-for-bit: identical
responses, identical ordering, identical post objects (materialised lazily
per timeline and cached as immutable tuples).  Mutators raise
:class:`PlatformError`.  The social graph is the CSR compilation of the
build graph (:class:`~repro.graph.csr.CSRGraph`).

The column arrays never have to live in RAM: every read path (timeline
``searchsorted`` slicing, keyword-log windows, first-mention lookups)
works identically over ``np.memmap`` views of the sharded on-disk layout
(:mod:`repro.platform.serialization`), because the indexes compiled here
are themselves flat arrays.  A store whose columns are mapped from disk
carries ``storage == "mmap"`` and a ``source_dir`` pointing at the shard
directory; construction then passes :class:`CompiledIndexes` (compiled
once, on disk) instead of re-sorting, so opening a 10M-row platform is a
handful of ``mmap`` calls — no column is ever materialised wholesale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.errors import PlatformError
from repro.graph.csr import CSRGraph
from repro.platform.posts import Post, make_keywords
from repro.platform.users import ColumnProfiles, UserProfile

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.platform.store import MicroblogStore


@dataclass
class CompiledIndexes:
    """The sorted indexes :meth:`FrozenStore._compile_indexes` produces.

    A bundle of them can be built out-of-core (streaming freeze) or read
    back from the sharded layout, and handed to :class:`FrozenStore` so
    construction skips the in-RAM sorts entirely.  Every field may be an
    ``np.memmap``; serving semantics are identical either way.
    """

    sorted_user_ids: np.ndarray
    tl_order: np.ndarray
    tl_indptr: np.ndarray
    kw_times: Dict[str, np.ndarray]
    kw_users: Dict[str, np.ndarray]
    kw_pids: Dict[str, np.ndarray]
    kw_first_users: Dict[str, np.ndarray]
    kw_first_times: Dict[str, np.ndarray]


class FrozenStore:
    """Columnar, immutable view of a fully built platform store."""

    def __init__(
        self,
        graph: CSRGraph,
        profiles: Dict[int, UserProfile],
        user_order: List[int],
        post_user: np.ndarray,
        post_time: np.ndarray,
        post_id: np.ndarray,
        post_length: np.ndarray,
        post_likes: np.ndarray,
        post_keyword: np.ndarray,
        keyword_names: List[str],
        multi_keywords: Optional[Dict[int, Tuple[str, ...]]] = None,
        next_post_id: Optional[int] = None,
        precompiled: Optional[CompiledIndexes] = None,
        source_dir: Optional[str] = None,
        storage: str = "ram",
    ) -> None:
        self.graph = graph
        self._profiles = profiles
        self._user_order = user_order
        self.post_user = post_user
        self.post_time = post_time
        self.post_id = post_id
        self.post_length = post_length
        self.post_likes = post_likes
        self.post_keyword = post_keyword
        self._keyword_names = keyword_names
        self._multi = multi_keywords or {}
        self._next_post_id = (
            next_post_id
            if next_post_id is not None
            else (int(post_id.max()) + 1 if post_id.size else 0)
        )
        self.source_dir = source_dir
        """Sharded on-disk layout backing/mirroring this store, if any.
        :class:`~repro.parallel.platform_ref.PlatformRef` reuses it as the
        spill, so process workers map the same files the parent serves."""
        self.storage = storage
        """``"ram"`` or ``"mmap"`` — where the columns physically live."""
        self.cache_epoch = 0
        """Bumped by :meth:`drop_caches`.  Consumers that remember what
        they have already touched (the kernel's page prefetcher) key
        their memory on it, so a bench cold-start resets them too."""
        if precompiled is not None:
            self._adopt_indexes(precompiled)
        else:
            self._compile_indexes()

    # ------------------------------------------------------------------
    # compilation
    # ------------------------------------------------------------------
    @classmethod
    def from_store(cls, store: "MicroblogStore") -> "FrozenStore":
        """Compile *store* (pending column batches and/or legacy indexes)."""
        chunks = store._pending
        columns: List[Tuple[np.ndarray, ...]] = []
        keyword_names: List[str] = []
        keyword_index: Dict[str, int] = {}
        multi: Dict[int, Tuple[str, ...]] = {}

        def kw_code(name: Optional[str]) -> int:
            if name is None:
                return -1
            if name not in keyword_index:
                keyword_index[name] = len(keyword_names)
                keyword_names.append(name)
            return keyword_index[name]

        # Posts already integrated into the legacy indexes (if any) come
        # first so the combined columns stay in post-id order; the two
        # populations never interleave because add_post drains pending.
        legacy: List[Post] = sorted(
            (p for timeline in store._timelines.values() for p in timeline),
            key=lambda p: p.post_id,
        )
        if legacy:
            codes = np.empty(len(legacy), dtype=np.int64)
            for row, post in enumerate(legacy):
                words = sorted(post.keywords)
                if len(words) > 1:
                    codes[row] = kw_code(words[0])
                    multi[int(post.post_id)] = tuple(words)
                else:
                    codes[row] = kw_code(words[0]) if words else -1
            columns.append(
                (
                    np.array([p.user_id for p in legacy], dtype=np.int64),
                    np.array([p.timestamp for p in legacy], dtype=np.float64),
                    np.array([p.post_id for p in legacy], dtype=np.int64),
                    np.array([p.length for p in legacy], dtype=np.int64),
                    np.array([p.likes for p in legacy], dtype=np.int64),
                    codes,
                )
            )
        for chunk in chunks:
            code = kw_code(chunk.keyword)
            columns.append(
                (
                    chunk.user_ids,
                    chunk.timestamps,
                    chunk.post_ids,
                    chunk.lengths,
                    chunk.likes,
                    np.full(chunk.user_ids.size, code, dtype=np.int64),
                )
            )

        if columns:
            post_user, post_time, post_id, post_length, post_likes, post_kw = (
                np.concatenate(parts) for parts in zip(*columns)
            )
        else:
            post_user = post_id = post_length = post_likes = post_kw = np.empty(0, np.int64)
            post_time = np.empty(0, np.float64)

        return cls(
            graph=CSRGraph.from_graph(store.graph),
            profiles=store._profiles,
            user_order=list(store._profiles),
            post_user=post_user,
            post_time=post_time,
            post_id=post_id,
            post_length=post_length,
            post_likes=post_likes,
            post_keyword=post_kw,
            keyword_names=keyword_names,
            multi_keywords=multi,
            next_post_id=store._next_post_id,
        )

    def _compile_indexes(self) -> None:
        ids = np.array(sorted(self._profiles), dtype=np.int64)
        self._sorted_user_ids = ids
        if ids.size and ids[0] == 0 and ids[-1] == ids.size - 1:
            rows = self.post_user  # contiguous ids: row == id, skip the search
        else:
            rows = np.searchsorted(ids, self.post_user)
        # Stable lexsort: (user, time) with insertion order breaking ties,
        # exactly the order repeated bisect.insort produces.
        self._tl_order = np.lexsort((self.post_time, rows))
        counts = np.bincount(rows, minlength=ids.size) if rows.size else np.zeros(ids.size, np.int64)
        self._tl_indptr = np.zeros(ids.size + 1, dtype=np.int64)
        np.cumsum(counts, out=self._tl_indptr[1:])
        self._tl_cache: Dict[int, Tuple[Post, ...]] = {}

        # Per-keyword logs sorted by the legacy (t, u, pid) tuple order.
        self._kw_times: Dict[str, np.ndarray] = {}
        self._kw_users: Dict[str, np.ndarray] = {}
        self._kw_pids: Dict[str, np.ndarray] = {}
        self._kw_first_users: Dict[str, np.ndarray] = {}
        self._kw_first_times: Dict[str, np.ndarray] = {}
        # Background posts (code -1) dominate the column; filter them out
        # once so each keyword scans only the tagged subset.
        tagged = np.flatnonzero(self.post_keyword >= 0)
        tagged_codes = self.post_keyword[tagged]
        for code, name in enumerate(self._keyword_names):
            rows_kw = tagged[tagged_codes == code]
            extra = [
                pid for pid, words in self._multi.items() if name in words[1:]
            ]
            if extra:
                id_rows = np.searchsorted(self.post_id, np.array(extra, dtype=np.int64))
                rows_kw = np.concatenate([rows_kw, id_rows])
            t = self.post_time[rows_kw]
            u = self.post_user[rows_kw]
            p = self.post_id[rows_kw]
            order = np.lexsort((p, u, t))
            t, u, p = t[order], u[order], p[order]
            self._kw_times[name] = t
            self._kw_users[name] = u
            self._kw_pids[name] = p
            # First mention per user: first occurrence in time order,
            # kept as parallel (sorted users, times) arrays — np.unique
            # returns users ascending, matching the historical dict order.
            uniq, first_idx = np.unique(u, return_index=True)
            self._kw_first_users[name] = uniq
            self._kw_first_times[name] = t[first_idx]
        self._finish_indexes()

    def _adopt_indexes(self, compiled: CompiledIndexes) -> None:
        """Serve from pre-sorted (possibly disk-mapped) indexes as-is."""
        self._sorted_user_ids = compiled.sorted_user_ids
        self._tl_order = compiled.tl_order
        self._tl_indptr = compiled.tl_indptr
        self._tl_cache = {}
        self._kw_times = dict(compiled.kw_times)
        self._kw_users = dict(compiled.kw_users)
        self._kw_pids = dict(compiled.kw_pids)
        self._kw_first_users = dict(compiled.kw_first_users)
        self._kw_first_times = dict(compiled.kw_first_times)
        self._finish_indexes()

    def _finish_indexes(self) -> None:
        self._kw_sets = {name: make_keywords(name) for name in self._keyword_names}

    def compiled_indexes(self) -> CompiledIndexes:
        """The live index bundle (shared arrays, treat as immutable)."""
        return CompiledIndexes(
            sorted_user_ids=self._sorted_user_ids,
            tl_order=self._tl_order,
            tl_indptr=self._tl_indptr,
            kw_times=dict(self._kw_times),
            kw_users=dict(self._kw_users),
            kw_pids=dict(self._kw_pids),
            kw_first_users=dict(self._kw_first_users),
            kw_first_times=dict(self._kw_first_times),
        )

    # ------------------------------------------------------------------
    # immutability guards
    # ------------------------------------------------------------------
    def _frozen(self, operation: str):
        raise PlatformError(f"FrozenStore is immutable ({operation})")

    def add_user(self, profile: UserProfile) -> None:
        self._frozen("add_user")

    def add_post(self, post: Post) -> None:
        self._frozen("add_post")

    def add_posts_columnar(self, *args, **kwargs) -> None:
        self._frozen("add_posts_columnar")

    def new_post_id(self) -> int:
        self._frozen("new_post_id")

    def freeze(self) -> "FrozenStore":
        """Already frozen (idempotent)."""
        return self

    # ------------------------------------------------------------------
    # users
    # ------------------------------------------------------------------
    def profile(self, user_id: int) -> UserProfile:
        try:
            return self._profiles[user_id]
        except KeyError:
            raise PlatformError(f"unknown user {user_id}") from None

    def has_user(self, user_id: int) -> bool:
        return user_id in self._profiles

    def user_ids(self) -> List[int]:
        return list(self._user_order)

    @property
    def num_users(self) -> int:
        return len(self._profiles)

    @property
    def num_posts(self) -> int:
        return self._next_post_id

    # ------------------------------------------------------------------
    # timelines and keyword access
    # ------------------------------------------------------------------
    def _user_row(self, user_id: int) -> int:
        row = int(np.searchsorted(self._sorted_user_ids, user_id))
        if row >= self._sorted_user_ids.size or self._sorted_user_ids[row] != user_id:
            raise PlatformError(f"unknown user {user_id}")
        return row

    def _materialize(self, rows: np.ndarray) -> Tuple[Post, ...]:
        empty = frozenset()
        multi = self._multi
        new = Post.__new__
        posts = []
        for pid, uid, ts, code, ln, lk in zip(
            self.post_id[rows].tolist(),
            self.post_user[rows].tolist(),
            self.post_time[rows].tolist(),
            self.post_keyword[rows].tolist(),
            self.post_length[rows].tolist(),
            self.post_likes[rows].tolist(),
        ):
            if pid in multi:
                words = make_keywords(*multi[pid])
            elif code >= 0:
                words = self._kw_sets[self._keyword_names[code]]
            else:
                words = empty
            # Frozen-dataclass __init__ pays one object.__setattr__ per
            # field; writing the instance dict directly is ~2.5x faster and
            # produces an identical (eq/hash-compatible) Post.
            post = new(Post)
            d = post.__dict__
            d["post_id"] = pid
            d["user_id"] = uid
            d["timestamp"] = ts
            d["keywords"] = words
            d["length"] = ln
            d["likes"] = lk
            posts.append(post)
        return tuple(posts)

    def timeline(self, user_id: int) -> Tuple[Post, ...]:
        """Full timeline of *user_id*, oldest first (cached immutable tuple)."""
        cached = self._tl_cache.get(user_id)
        if cached is None:
            row = self._user_row(user_id)
            rows = self._tl_order[self._tl_indptr[row]: self._tl_indptr[row + 1]]
            cached = self._materialize(rows)
            self._tl_cache[user_id] = cached
        return cached

    def drop_caches(self) -> None:
        """Forget memoised timeline tuples and per-keyword columns.

        Benchmarking aid: returns the store to its just-compiled serving
        state, so a timed run pays the cold materialisation cost exactly
        as the first estimation over a freshly loaded platform would
        (process-cached bench platforms otherwise leak warm state
        between runs).  Purely a cache reset — serving results are
        unchanged.  Never called on the serving path.
        """
        self._tl_cache.clear()
        self.cache_epoch += 1

    def timeline_rows(self, user_id: int) -> np.ndarray:
        """Column rows of *user_id*'s timeline, oldest first.

        The raw form of :meth:`timeline`: indices into the post columns
        in the compiled (time, insertion) order, without materialising a
        single :class:`Post`.  On a mapped store this is a memmap view —
        treat as immutable.  Kernel support (:mod:`repro.core.kernels`).
        """
        row = self._user_row(user_id)
        return self._tl_order[self._tl_indptr[row]: self._tl_indptr[row + 1]]

    def materialize_rows(self, rows: np.ndarray) -> Tuple[Post, ...]:
        """Post objects for the given column *rows* (uncached).

        Pairs with :meth:`timeline_rows`: the kernel's columnar condition
        views materialise only the rows that survive the keyword/window
        masks instead of the whole timeline."""
        return self._materialize(rows)

    def timeline_length(self, user_id: int) -> int:
        row = self._user_row(user_id)
        return int(self._tl_indptr[row + 1] - self._tl_indptr[row])

    def timeline_lengths(self, user_ids: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`timeline_length` over an id array.

        Raises :class:`PlatformError` if *any* id is unknown — batch
        callers (the classification fast path) fall back to per-user
        resolution, which surfaces the offending id with the exact error
        the scalar path raises.
        """
        ids = self._sorted_user_ids
        if ids.size == 0:
            raise PlatformError("timeline_lengths: store has no users")
        rows = np.minimum(np.searchsorted(ids, user_ids), ids.size - 1)
        if not np.array_equal(ids[rows], user_ids):
            raise PlatformError("timeline_lengths: unknown user id in batch")
        return self._tl_indptr[rows + 1] - self._tl_indptr[rows]

    def keywords(self) -> List[str]:
        return list(self._keyword_names)

    def keyword_posts(
        self, keyword: str, start: float = float("-inf"), end: float = float("inf")
    ) -> Iterator[Tuple[float, int, int]]:
        """All ``(timestamp, user_id, post_id)`` mentions of *keyword* in
        ``[start, end)``, oldest first — ``searchsorted`` slicing, no scan."""
        name = keyword.lower()
        times = self._kw_times.get(name)
        if times is None:
            return
        lo = int(np.searchsorted(times, start, side="left"))
        hi = int(np.searchsorted(times, end, side="left"))
        yield from zip(
            times[lo:hi].tolist(),
            self._kw_users[name][lo:hi].tolist(),
            self._kw_pids[name][lo:hi].tolist(),
        )

    def users_mentioning(
        self, keyword: str, start: float = float("-inf"), end: float = float("inf")
    ) -> List[int]:
        """Distinct users with >= 1 mention of *keyword* in ``[start, end)``."""
        name = keyword.lower()
        times = self._kw_times.get(name)
        if times is None:
            return []
        lo = int(np.searchsorted(times, start, side="left"))
        hi = int(np.searchsorted(times, end, side="left"))
        window = self._kw_users[name][lo:hi]
        _, first_idx = np.unique(window, return_index=True)
        # First-appearance (time) order, matching the legacy dedup order.
        return window[np.sort(first_idx)].tolist()

    def first_mention_time(self, keyword: str, user_id: int) -> Optional[float]:
        """When *user_id* first posted *keyword*, or None if never."""
        users = self._kw_first_users.get(keyword.lower())
        if users is None or users.size == 0:
            return None
        idx = int(np.searchsorted(users, user_id))
        if idx >= users.size or users[idx] != user_id:
            return None
        return float(self._kw_first_times[keyword.lower()][idx])

    def first_mention_times(self, keyword: str) -> Dict[int, float]:
        """Full first-mention map for *keyword* (ascending user id)."""
        name = keyword.lower()
        users = self._kw_first_users.get(name)
        if users is None:
            return {}
        return dict(zip(users.tolist(), self._kw_first_times[name].tolist()))

    def has_keyword_log(self, keyword: str) -> bool:
        """True when *keyword* has a compiled first-mention column.

        For a registered keyword, absence from that column proves a user
        never posted it — the implication the kernel's capped-window
        shortcut relies on (:mod:`repro.core.kernels`)."""
        return keyword.lower() in self._kw_first_users

    def matching_keyword_codes(self, keyword: str) -> np.ndarray:
        """Codes of registered keywords whose keyword set contains *keyword*.

        A post tagged with one of these codes is guaranteed to match the
        needle (a post's code is its alphabetically-first word, always a
        member of its own keyword set) — the columnar form of the
        ``needle in post.keywords`` test for singly-tagged posts.
        """
        needle = keyword.lower()
        codes = [
            code
            for code, name in enumerate(self._keyword_names)
            if needle in self._kw_sets[name]
        ]
        return np.asarray(codes, dtype=np.int64)

    def matching_extra_post_ids(self, keyword: str) -> np.ndarray:
        """Sorted post ids of multi-keyword posts matching *keyword*.

        Completes :meth:`matching_keyword_codes`: a multi-keyword post
        matches through any of its words, not just the coded first one.
        """
        needle = keyword.lower()
        pids = [
            pid
            for pid, words in self._multi.items()
            if needle in make_keywords(*words)
        ]
        return np.asarray(sorted(pids), dtype=np.int64)

    def first_mention_arrays(self, keyword: str) -> Tuple[np.ndarray, np.ndarray]:
        """First-mention columns for *keyword*: ``(user_ids, times)``.

        ``user_ids`` is sorted ascending so membership and values resolve
        with one ``searchsorted`` per batch — the classification fast
        path's lookup structure.  Values are bit-identical to
        :meth:`first_mention_time` (both read the columns compiled at
        freeze; on a mapped store these are memmap views and the fast
        path touches only the pages it slices).  A keyword never posted
        yields two empty arrays.  Treat as immutable.
        """
        name = keyword.lower()
        users = self._kw_first_users.get(name)
        if users is None:
            empty_u = np.empty(0, dtype=np.int64)
            empty_t = np.empty(0, dtype=np.float64)
            return empty_u, empty_t
        return users, self._kw_first_times[name]

    def all_posts(self) -> Iterator[Post]:
        """Every post on the platform (firehose order: per-user, by time).

        Materialises post objects without populating the timeline cache,
        so a full scan does not pin every timeline in memory.
        """
        for user_id in self._user_order:
            cached = self._tl_cache.get(user_id)
            if cached is not None:
                yield from cached
                continue
            row = self._user_row(user_id)
            rows = self._tl_order[self._tl_indptr[row]: self._tl_indptr[row + 1]]
            yield from self._materialize(rows)

    # ------------------------------------------------------------------
    # derived maintenance
    # ------------------------------------------------------------------
    def refresh_follower_counts(self) -> None:
        """Copy graph degrees into ``profile.followers`` (profiles stay
        shared, mutable metadata — the platform's display layer)."""
        if isinstance(self._profiles, ColumnProfiles):
            # Lazy columnar profiles compute followers from the graph on
            # materialisation — already consistent, nothing to write back.
            return
        for user_id, profile in self._profiles.items():
            profile.followers = self.graph.degree(user_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FrozenStore(users={self.num_users}, posts={self.post_id.size}, "
            f"keywords={len(self._keyword_names)})"
        )
