"""Micro-posts.

A post records only what the estimators consume: author, timestamp, the
keywords it mentions, its text length, and a like count (the Tumblr
measure of Figure 14).  Full text bodies would only burn memory — every
query in the paper is keyword-conditioned, never full-text-scored.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet


@dataclass(frozen=True)
class Post:
    """One immutable micro-post."""

    post_id: int
    user_id: int
    timestamp: float
    keywords: FrozenSet[str] = frozenset()
    length: int = 0
    likes: int = 0

    def mentions(self, keyword: str) -> bool:
        """True when the post contains *keyword* (case-insensitive)."""
        return keyword.lower() in self.keywords

    def in_window(self, start: float, end: float) -> bool:
        """True when ``start <= timestamp < end``."""
        return start <= self.timestamp < end


def make_keywords(*words: str) -> FrozenSet[str]:
    """Normalised keyword set for a post (lower-cased, deduplicated)."""
    return frozenset(word.lower() for word in words)
