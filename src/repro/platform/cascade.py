"""Keyword propagation over the social graph.

The level-by-level subgraph exists because keyword adoption times are not
arbitrary: keywords *propagate along edges*, and followers respond fast —
the paper cites Sysomos [3]: "92% of retweets produced by followers of a
user occur within 1 hour of the original tweet" (§4.2.1).  That statistic
is precisely what creates intra-level edges inside tightly connected
communities.

We model this as an independent-cascade process with two ingredients:

* **exogenous seeding** — users start mentioning the keyword at a rate
  given by the keyword's :class:`~repro.platform.workload.KeywordSpec`
  intensity (news-driven adoption, independent of the graph);
* **endogenous spread** — when a user first mentions the keyword at time
  ``t``, each not-yet-adopted neighbor independently adopts with the
  keyword's adoption probability, after a response delay drawn from a
  two-component mixture: with probability ``fast_fraction`` (default 0.92)
  an exponential with mean ~22 minutes (so almost all fast responses land
  within the hour), otherwise a heavy slow tail with mean ~2 days.

Adopters also post follow-up mentions after their first one, which keeps
the search API's recency window populated and makes SUM(posts) differ from
COUNT(users).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro._rng import RandomLike, ensure_rng
from repro.errors import PlatformError
from repro.platform.clock import DAY, HOUR, MINUTE
from repro.platform.posts import Post, make_keywords
from repro.platform.store import MicroblogStore
from repro.platform.workload import KeywordSpec


DELAY_MODELS = ("lognormal", "mixture")


@dataclass(frozen=True)
class CascadeParams:
    """Tunable propagation constants (defaults calibrated per DESIGN.md §2).

    Two response-delay models are provided:

    * ``"lognormal"`` (default) — delay to a neighbor's own first mention
      is lognormal with the given median and sigma.  Calibrated so the
      Table 2 edge taxonomy comes out right: co-mention gaps of hours to
      a few days, i.e. mostly intra-/adjacent-level edges at day-scale
      bucket widths.
    * ``"mixture"`` — the retweet-latency mixture: with ``fast_fraction``
      an exponential of mean ``fast_delay_mean`` (the paper's "92% of
      retweet responses within 1 hour" [3]), else a slow exponential.
      Retweets are faster than composing one's own first mention, so this
      variant produces starkly bimodal level gaps; it is kept for
      sensitivity studies.
    """

    delay_model: str = "lognormal"
    delay_median: float = 14 * HOUR
    delay_sigma: float = 1.4
    fast_fraction: float = 0.92
    fast_delay_mean: float = 22 * MINUTE
    slow_delay_mean: float = 2 * DAY
    extra_mentions_mean: float = 2.5
    extra_mention_gap_mean: float = 50 * DAY
    """Adopters keep mentioning the keyword long after their first post
    (follow-up count and spacing).  This sustained chatter is what keeps
    a keyword searchable: the paper's seed users are *anyone* who posted
    the keyword within the search window, not only brand-new adopters, so
    the seed set spans many levels."""
    post_length_range: Tuple[int, int] = (40, 140)
    likes_pareto_alpha: float = 1.6
    exposure_cap: int = 25
    """At most this many (random) neighbors notice a new adopter's post.

    Attention is finite: a celebrity's mention does not expose all 500k
    followers.  Without this cap the heavy-tailed degree distribution
    makes every cascade supercritical and keywords saturate the platform,
    destroying the 'small matching fraction' regime the paper targets."""
    weak_tie_common_neighbors: int = 2
    weak_tie_multiplier: float = 0.015
    """Edges whose endpoints share fewer than ``weak_tie_common_neighbors``
    common neighbors transmit with probability scaled by this multiplier.

    Granovetter-style weak ties: influence flows readily inside a tight
    community and only occasionally across bridges.  This is what confines
    each keyword wave to the communities it reaches (saturating them) and
    keeps edges between different waves — cross-level edges — rare, as in
    Table 2."""
    max_adopters: Optional[int] = None

    def __post_init__(self) -> None:
        if self.delay_model not in DELAY_MODELS:
            raise PlatformError(f"delay_model must be one of {DELAY_MODELS}")
        if self.delay_median <= 0 or self.delay_sigma <= 0:
            raise PlatformError("lognormal delay parameters must be positive")
        if not 0.0 <= self.fast_fraction <= 1.0:
            raise PlatformError("fast_fraction must be in [0, 1]")
        if self.fast_delay_mean <= 0 or self.slow_delay_mean <= 0:
            raise PlatformError("delay means must be positive")
        if self.extra_mentions_mean < 0 or self.extra_mention_gap_mean <= 0:
            raise PlatformError("extra-mention parameters out of range")
        if self.exposure_cap < 1:
            raise PlatformError("exposure_cap must be >= 1")
        if self.weak_tie_common_neighbors < 0 or not 0.0 <= self.weak_tie_multiplier <= 1.0:
            raise PlatformError("weak-tie parameters out of range")


@dataclass
class CascadeResult:
    """Outcome of one keyword cascade."""

    keyword: str
    adoption_times: Dict[int, float]
    total_posts: int

    @property
    def num_adopters(self) -> int:
        return len(self.adoption_times)


def sample_response_delay(params: CascadeParams, rng) -> float:
    """One follower response delay per the configured delay model."""
    if params.delay_model == "lognormal":
        return rng.lognormvariate(math.log(params.delay_median), params.delay_sigma)
    if rng.random() < params.fast_fraction:
        return rng.expovariate(1.0 / params.fast_delay_mean)
    return rng.expovariate(1.0 / params.slow_delay_mean)


def _poisson(rng, mean: float) -> int:
    """Poisson sample via inversion (means here are small, < ~100/day)."""
    if mean <= 0:
        return 0
    # Split large means to avoid floating-point underflow of exp(-mean).
    if mean > 30:
        half = _poisson(rng, mean / 2.0)
        return half + _poisson(rng, mean - mean / 2.0)
    threshold = math.exp(-mean)
    count, product = 0, rng.random()
    while product > threshold:
        count += 1
        product *= rng.random()
    return count


def _make_mention_post(
    store: MicroblogStore,
    user_id: int,
    timestamp: float,
    keyword: str,
    params: CascadeParams,
    rng,
) -> Post:
    low, high = params.post_length_range
    return Post(
        post_id=store.new_post_id(),
        user_id=user_id,
        timestamp=timestamp,
        keywords=make_keywords(keyword),
        length=rng.randint(low, high),
        likes=min(int(rng.paretovariate(params.likes_pareto_alpha)), 10_000) - 1,
    )


def run_cascade(
    store: MicroblogStore,
    spec: KeywordSpec,
    horizon: float,
    params: Optional[CascadeParams] = None,
    seed: RandomLike = None,
    intensity_scale: float = 1.0,
    emission: str = "columnar",
) -> CascadeResult:
    """Simulate *spec*'s keyword over ``[0, horizon)`` and write posts.

    ``intensity_scale`` multiplies the spec's exogenous rate; the platform
    builder passes ``num_users / 10_000`` so keyword populations stay a
    fixed *fraction* of the platform regardless of its size (intensities
    in :mod:`repro.platform.workload` are calibrated per 10k users).

    ``emission`` selects how mention posts are written: ``"columnar"``
    (default) batches per-adopter numpy draws into the store's bulk column
    buffers; ``"scalar"`` is the original per-post python-rng path, kept
    for baseline benchmarking and byte-compatible old-seed platforms.

    Returns the adoption-time map — the ground truth from which the
    level-by-level structure derives.  Deterministic given *seed*.
    """
    if emission not in ("columnar", "scalar"):
        raise PlatformError(f"unknown emission mode {emission!r}")
    params = params or CascadeParams()
    if intensity_scale <= 0:
        raise PlatformError("intensity_scale must be positive")
    rng = ensure_rng(seed)
    users = store.user_ids()
    if not users:
        raise PlatformError("store has no users")
    # Post *emission* draws (follow-up counts, gaps, lengths, likes) come in
    # numpy batches from a stream forked off the cascade rng up front, so
    # the event-loop rng drives propagation only.  ``emission="scalar"``
    # reproduces the pre-columnar per-post python draws exactly.
    post_rng = np.random.default_rng(rng.getrandbits(128)) if emission == "columnar" else None

    # Exogenous seed events, day by day.
    events: List[Tuple[float, int]] = []
    day_start = 0.0
    while day_start < horizon:
        rate = intensity_scale * spec.intensity(day_start + DAY / 2)
        for _ in range(_poisson(rng, rate)):
            timestamp = day_start + rng.random() * min(DAY, horizon - day_start)
            events.append((timestamp, rng.choice(users)))
        day_start += DAY
    heapq.heapify(events)

    adoption_times: Dict[int, float] = {}
    total_posts = 0
    while events:
        timestamp, user_id = heapq.heappop(events)
        if timestamp >= horizon or user_id in adoption_times:
            continue
        if params.max_adopters is not None and len(adoption_times) >= params.max_adopters:
            break
        adoption_times[user_id] = timestamp
        if post_rng is None:
            total_posts += _emit_mentions(
                store, user_id, timestamp, spec.keyword, horizon, params, rng
            )
        neighbors = store.graph.neighbors_unsafe(user_id)
        if len(neighbors) > params.exposure_cap:
            exposed = rng.sample(list(neighbors), params.exposure_cap)
        else:
            exposed = list(neighbors)
        probability = spec.adoption_probability
        weak_probability = probability * params.weak_tie_multiplier
        for neighbor in exposed:
            if neighbor in adoption_times:
                continue
            # One uniform decides adoption.  The common-neighbor lookup is
            # the loop's hottest call, so consult it lazily: draws at or
            # above ``probability`` reject and draws below the weak-tie
            # probability accept regardless of tie strength — only the band
            # in between needs the tie test.  Decisions and the rng stream
            # are bit-identical to testing the tie up front.
            draw = rng.random()
            if draw >= probability:
                continue
            if (
                params.weak_tie_common_neighbors > 0
                and draw >= weak_probability
                and store.graph.common_neighbor_count(user_id, neighbor)
                < params.weak_tie_common_neighbors
            ):
                continue
            delay = sample_response_delay(params, rng)
            heapq.heappush(events, (timestamp + delay, neighbor))

    if post_rng is not None:
        total_posts = _emit_mentions_columnar(
            store, adoption_times, spec.keyword, horizon, params, post_rng
        )
    return CascadeResult(spec.keyword, adoption_times, total_posts)


def _emit_mentions_columnar(
    store: MicroblogStore,
    adoption_times: Dict[int, float],
    keyword: str,
    horizon: float,
    params: CascadeParams,
    post_rng: np.random.Generator,
) -> int:
    """All of a cascade's mention posts, written as one column batch.

    The event loop only decides *who adopts when*; every mention post —
    each adopter's first plus its follow-ups — is drawn here in whole-
    cascade numpy batches and lands in the store's bulk buffers.  No
    :class:`Post` objects, no bisect, no per-adopter array overhead.

    On a spooled store (the out-of-core ``"mmap"`` build plane) the
    columns stream to disk in bounded chunks instead: the survivor
    ``(user, time)`` pairs are appended first, then the length column,
    then the likes column, each drawn chunk-by-chunk from *post_rng*.
    Per-column chunked draws consume the generator stream element-for-
    element like the one-shot draws (lengths fully precede likes either
    way), so the emitted posts are bit-identical; peak memory is bounded
    by the adopter count and the spool chunk size, not the post count.
    """
    count = len(adoption_times)
    if count == 0:
        return 0
    users = np.fromiter(adoption_times.keys(), dtype=np.int64, count=count)
    first_times = np.fromiter(adoption_times.values(), dtype=np.float64, count=count)
    extras = post_rng.poisson(params.extra_mentions_mean, size=count)
    total_extra = int(extras.sum())
    gaps = post_rng.exponential(params.extra_mention_gap_mean, size=total_extra)
    follow_times = np.repeat(first_times, extras) + gaps
    keep = follow_times < horizon
    all_users = np.concatenate([users, np.repeat(users, extras)[keep]])
    all_times = np.concatenate([first_times, follow_times[keep]])
    posted = all_users.size
    low, high = params.post_length_range
    spool = getattr(store, "spool", None)
    if spool is not None:
        start = store.reserve_post_ids(posted)
        code = spool.kw_code(keyword.lower())
        chunk = spool.chunk_rows
        for offset in range(0, posted, chunk):
            stop = min(offset + chunk, posted)
            spool.append_column("post_user", all_users[offset:stop])
            spool.append_column("post_time", all_times[offset:stop])
            spool.append_column(
                "post_id", np.arange(start + offset, start + stop, dtype=np.int64)
            )
            spool.append_column(
                "post_keyword", np.full(stop - offset, code, dtype=np.int64)
            )
        for offset in range(0, posted, chunk):
            size = min(chunk, posted - offset)
            spool.append_column(
                "post_length", post_rng.integers(low, high + 1, size=size)
            )
        for offset in range(0, posted, chunk):
            size = min(chunk, posted - offset)
            spool.append_column(
                "post_likes",
                np.minimum(
                    (post_rng.pareto(params.likes_pareto_alpha, size=size) + 1.0).astype(
                        np.int64
                    ),
                    10_000,
                )
                - 1,
            )
        return posted
    lengths = post_rng.integers(low, high + 1, size=posted)
    likes = (
        np.minimum(
            (post_rng.pareto(params.likes_pareto_alpha, size=posted) + 1.0).astype(np.int64),
            10_000,
        )
        - 1
    )
    store.add_posts_columnar(all_users, all_times, lengths, likes, keyword=keyword)
    return posted


def _emit_mentions(
    store: MicroblogStore,
    user_id: int,
    adoption_time: float,
    keyword: str,
    horizon: float,
    params: CascadeParams,
    rng,
) -> int:
    """First mention plus geometric follow-ups; returns posts written."""
    store.add_post(_make_mention_post(store, user_id, adoption_time, keyword, params, rng))
    posted = 1
    for _ in range(_poisson(rng, params.extra_mentions_mean)):
        gap = rng.expovariate(1.0 / params.extra_mention_gap_mean)
        timestamp = adoption_time + gap
        if timestamp < horizon:
            store.add_post(_make_mention_post(store, user_id, timestamp, keyword, params, rng))
            posted += 1
    return posted
