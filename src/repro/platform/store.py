"""The platform's complete data store.

This is the "firehose view" only the platform operator has.  The
:mod:`repro.api` layer exposes restricted, paginated, rate-limited slices of
it; :mod:`repro.groundtruth` computes exact aggregates from it.  Keeping the
store authoritative and the API restrictive is what lets us measure true
relative error for every estimator, exactly as the paper does with its
Streaming-API ground-truth corpus (§3.2, §6.1).

Indexes maintained:

* per-user timelines, kept sorted by timestamp (newest last);
* per-keyword posting log ``[(timestamp, user_id, post_id), ...]`` sorted by
  time — powers both the simulated search API and ground truth;
* per-keyword first-mention time per user — the quantity that defines the
  paper's level-by-level structure (§4.2.1).

Two write paths feed those indexes:

* :meth:`MicroblogStore.add_post` — the classic one-post-at-a-time insert
  (bisect into every index), kept for interleaved read/write workloads;
* :meth:`MicroblogStore.add_posts_columnar` — the bulk data plane: numpy
  column batches are buffered untouched and integrated *lazily*, with one
  stable sort per index instead of one bisect per post.  The platform
  builder emits every background and cascade post this way; nothing reads
  the store until the build completes, so the quadratic insert cost of the
  legacy path disappears entirely.

After construction, :meth:`MicroblogStore.freeze` compiles the store to an
immutable, columnar :class:`~repro.platform.frozen.FrozenStore` (numpy SoA
post arrays, ``searchsorted`` slicing, CSR social graph) — the serving form
every estimator run should use.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import PlatformError
from repro.graph.social_graph import SocialGraph
from repro.platform.posts import Post, make_keywords
from repro.platform.users import UserProfile


class _ColumnChunk:
    """One buffered ``add_posts_columnar`` batch (SoA, insertion order)."""

    __slots__ = ("user_ids", "post_ids", "timestamps", "lengths", "likes", "keyword")

    def __init__(
        self,
        user_ids: np.ndarray,
        post_ids: np.ndarray,
        timestamps: np.ndarray,
        lengths: np.ndarray,
        likes: np.ndarray,
        keyword: Optional[str],
    ) -> None:
        self.user_ids = user_ids
        self.post_ids = post_ids
        self.timestamps = timestamps
        self.lengths = lengths
        self.likes = likes
        self.keyword = keyword


class MicroblogStore:
    """Authoritative container of users, posts and the social graph."""

    def __init__(self, graph: Optional[SocialGraph] = None, spool=None) -> None:
        self.graph = graph if graph is not None else SocialGraph()
        self._profiles: Dict[int, UserProfile] = {}
        self._timelines: Dict[int, List[Post]] = {}
        self._keyword_log: Dict[str, List[Tuple[float, int, int]]] = {}
        self._first_mention: Dict[str, Dict[int, float]] = {}
        self._next_post_id = 0
        self._pending: List[_ColumnChunk] = []
        self.spool = spool
        """Optional :class:`~repro.platform.outofcore.ColumnSpool`.  When
        set, column batches stream straight to the spool's on-disk files
        instead of buffering in ``_pending`` — the store becomes a write-
        only build sink until :meth:`freeze` compiles it out of core.
        Post reads before that raise (there is nothing in RAM to read)."""

    # ------------------------------------------------------------------
    # population
    # ------------------------------------------------------------------
    def add_user(self, profile: UserProfile) -> None:
        if profile.user_id in self._profiles:
            raise PlatformError(f"duplicate user id {profile.user_id}")
        self._profiles[profile.user_id] = profile
        self._timelines[profile.user_id] = []
        self.graph.add_node(profile.user_id)

    def new_post_id(self) -> int:
        post_id = self._next_post_id
        self._next_post_id += 1
        return post_id

    def reserve_post_ids(self, count: int) -> int:
        """Claim *count* consecutive post ids; returns the first.

        The streaming build path draws each column in its own chunked
        pass (matching the one-shot RNG order), so it reserves the id
        range up front instead of going through a row-aligned batch.
        """
        start = self._next_post_id
        self._next_post_id += int(count)
        return start

    def _require_readable(self, operation: str) -> None:
        if self.spool is not None and self.spool.rows:
            raise PlatformError(
                f"spooled store is write-only until freeze() ({operation})"
            )

    def add_post(self, post: Post) -> None:
        """Insert *post*, maintaining all indexes.

        Posts may arrive out of timestamp order (cascades interleave), so
        the timeline insert is a bisect, not an append.
        """
        if self.spool is not None:
            raise PlatformError("scalar add_post is unsupported on a spooled store")
        if post.user_id not in self._profiles:
            raise PlatformError(f"post by unknown user {post.user_id}")
        if self._pending:
            self._integrate_pending()
        timeline = self._timelines[post.user_id]
        bisect.insort(timeline, post, key=lambda p: p.timestamp)
        for keyword in post.keywords:
            log = self._keyword_log.setdefault(keyword, [])
            bisect.insort(log, (post.timestamp, post.user_id, post.post_id))
            mentions = self._first_mention.setdefault(keyword, {})
            previous = mentions.get(post.user_id)
            if previous is None or post.timestamp < previous:
                mentions[post.user_id] = post.timestamp

    def add_posts_columnar(
        self,
        user_ids: Union[int, np.ndarray, Sequence[int]],
        timestamps: np.ndarray,
        lengths: np.ndarray,
        likes: np.ndarray,
        keyword: Optional[str] = None,
    ) -> np.ndarray:
        """Bulk-append posts as columns; returns the assigned post ids.

        ``user_ids`` may be a scalar (all rows by one author — the cascade
        emission case) or a per-row array.  All posts in one batch carry the
        same single *keyword* (or none).  Rows are recorded in insertion
        order; the sorted indexes are built lazily, with one stable sort per
        index, the first time the store is read — or never, if the store is
        frozen first.
        """
        timestamps = np.ascontiguousarray(timestamps, dtype=np.float64)
        count = timestamps.size
        if np.isscalar(user_ids) or isinstance(user_ids, (int, np.integer)):
            author = int(user_ids)
            if author not in self._profiles:
                raise PlatformError(f"post by unknown user {author}")
            users = np.full(count, author, dtype=np.int64)
        else:
            users = np.ascontiguousarray(user_ids, dtype=np.int64)
            if users.size != count:
                raise PlatformError("user_ids and timestamps must have equal length")
            if users.size and not self._all_known(users):
                raise PlatformError("post batch references unknown user ids")
        if count == 0:
            return np.empty(0, dtype=np.int64)
        post_ids = np.arange(self._next_post_id, self._next_post_id + count, dtype=np.int64)
        self._next_post_id += count
        if self.spool is not None:
            self.spool.append_posts(
                users,
                timestamps,
                post_ids,
                np.ascontiguousarray(lengths, dtype=np.int64),
                np.ascontiguousarray(likes, dtype=np.int64),
                keyword.lower() if keyword is not None else None,
            )
            return post_ids
        self._pending.append(
            _ColumnChunk(
                users,
                post_ids,
                timestamps,
                np.ascontiguousarray(lengths, dtype=np.int64),
                np.ascontiguousarray(likes, dtype=np.int64),
                keyword.lower() if keyword is not None else None,
            )
        )
        return post_ids

    def _all_known(self, users: np.ndarray) -> bool:
        if users.size <= 64:
            return all(int(u) in self._profiles for u in users)
        known = np.fromiter(self._profiles, dtype=np.int64, count=len(self._profiles))
        return bool(np.isin(users, known).all())

    # ------------------------------------------------------------------
    # lazy integration of buffered column batches
    # ------------------------------------------------------------------
    def _integrate_pending(self) -> None:
        """Merge buffered column batches into the sorted legacy indexes.

        Equivalent to calling :meth:`add_post` per row in insertion order
        (stable sorts reproduce bisect's ordering for timestamp ties), but
        with one sort per index instead of one bisect per post.
        """
        chunks, self._pending = self._pending, []
        users = np.concatenate([c.user_ids for c in chunks])
        times = np.concatenate([c.timestamps for c in chunks])

        keyword_sets = {
            c.keyword: make_keywords(c.keyword) for c in chunks if c.keyword is not None
        }
        posts: List[Post] = []
        for chunk in chunks:
            kwset = keyword_sets[chunk.keyword] if chunk.keyword is not None else frozenset()
            posts.extend(
                Post(pid, uid, ts, kwset, ln, lk)
                for pid, uid, ts, ln, lk in zip(
                    chunk.post_ids.tolist(),
                    chunk.user_ids.tolist(),
                    chunk.timestamps.tolist(),
                    chunk.lengths.tolist(),
                    chunk.likes.tolist(),
                )
            )

        # Timelines: stable sort by (user, time) keeps insertion order for
        # timestamp ties, matching repeated bisect.insort.
        order = np.lexsort((times, users))
        boundaries = np.flatnonzero(np.diff(users[order])) + 1
        for group in np.split(order, boundaries):
            owner = int(users[group[0]])
            timeline = self._timelines[owner]
            fresh = [posts[i] for i in group.tolist()]
            if timeline:
                timeline.extend(fresh)
                timeline.sort(key=lambda p: (p.timestamp, p.post_id))
            else:
                self._timelines[owner] = fresh

        # Keyword logs and first mentions, one keyword at a time (each
        # chunk carries at most one keyword, so grouping is chunk-level).
        for chunk_keyword in dict.fromkeys(c.keyword for c in chunks if c.keyword is not None):
            entries: List[Tuple[float, int, int]] = []
            for chunk in chunks:
                if chunk.keyword == chunk_keyword:
                    entries.extend(
                        zip(
                            chunk.timestamps.tolist(),
                            chunk.user_ids.tolist(),
                            chunk.post_ids.tolist(),
                        )
                    )
            entries.sort()
            log = self._keyword_log.setdefault(chunk_keyword, [])
            if log:
                log.extend(entries)
                log.sort()
            else:
                self._keyword_log[chunk_keyword] = entries
            mentions = self._first_mention.setdefault(chunk_keyword, {})
            for timestamp, user_id, _ in entries:
                previous = mentions.get(user_id)
                if previous is None or timestamp < previous:
                    mentions[user_id] = timestamp

    def flush(self) -> None:
        """Integrate buffered column batches now (no-op if none).

        The platform builder calls this before handing a mutable store to
        callers so the lazy first-read integration cannot race across
        threads.
        """
        if self._pending:
            self._integrate_pending()

    # ------------------------------------------------------------------
    # compilation
    # ------------------------------------------------------------------
    def freeze(self):
        """Compile to an immutable :class:`~repro.platform.frozen.FrozenStore`.

        Buffered column batches are consumed directly (no Post objects, no
        legacy index build); posts already integrated into the legacy
        indexes are gathered back into columns first.  The social graph is
        compiled to CSR.  The mutable store remains valid afterwards.
        """
        if self.spool is not None:
            from repro.platform.outofcore import freeze_spooled

            return freeze_spooled(self)
        from repro.platform.frozen import FrozenStore

        return FrozenStore.from_store(self)

    # ------------------------------------------------------------------
    # users
    # ------------------------------------------------------------------
    def profile(self, user_id: int) -> UserProfile:
        try:
            return self._profiles[user_id]
        except KeyError:
            raise PlatformError(f"unknown user {user_id}") from None

    def has_user(self, user_id: int) -> bool:
        return user_id in self._profiles

    def user_ids(self) -> List[int]:
        return list(self._profiles)

    @property
    def num_users(self) -> int:
        return len(self._profiles)

    @property
    def num_posts(self) -> int:
        return self._next_post_id

    # ------------------------------------------------------------------
    # timelines and keyword access
    # ------------------------------------------------------------------
    def timeline(self, user_id: int) -> List[Post]:
        """Full timeline of *user_id*, oldest first."""
        self._require_readable("timeline")
        if self._pending:
            self._integrate_pending()
        try:
            return list(self._timelines[user_id])
        except KeyError:
            raise PlatformError(f"unknown user {user_id}") from None

    def timeline_length(self, user_id: int) -> int:
        self._require_readable("timeline_length")
        if self._pending:
            self._integrate_pending()
        try:
            return len(self._timelines[user_id])
        except KeyError:
            raise PlatformError(f"unknown user {user_id}") from None

    def keywords(self) -> List[str]:
        self._require_readable("keywords")
        if self._pending:
            self._integrate_pending()
        return list(self._keyword_log)

    def keyword_posts(
        self, keyword: str, start: float = float("-inf"), end: float = float("inf")
    ) -> Iterator[Tuple[float, int, int]]:
        """All ``(timestamp, user_id, post_id)`` mentions of *keyword* in
        ``[start, end)``, oldest first."""
        self._require_readable("keyword_posts")
        if self._pending:
            self._integrate_pending()
        log = self._keyword_log.get(keyword.lower(), [])
        lo = bisect.bisect_left(log, (start,))
        for entry in log[lo:]:
            if entry[0] >= end:
                break
            yield entry

    def users_mentioning(
        self, keyword: str, start: float = float("-inf"), end: float = float("inf")
    ) -> List[int]:
        """Distinct users with >= 1 mention of *keyword* in ``[start, end)``."""
        seen: Dict[int, None] = {}
        for _, user_id, _ in self.keyword_posts(keyword, start, end):
            seen.setdefault(user_id)
        return list(seen)

    def first_mention_time(self, keyword: str, user_id: int) -> Optional[float]:
        """When *user_id* first posted *keyword*, or None if never."""
        self._require_readable("first_mention_time")
        if self._pending:
            self._integrate_pending()
        return self._first_mention.get(keyword.lower(), {}).get(user_id)

    def first_mention_times(self, keyword: str) -> Dict[int, float]:
        """Copy of the full first-mention map for *keyword*."""
        self._require_readable("first_mention_times")
        if self._pending:
            self._integrate_pending()
        return dict(self._first_mention.get(keyword.lower(), {}))

    def all_posts(self) -> Iterator[Post]:
        """Every post on the platform (firehose order: per-user, by time)."""
        self._require_readable("all_posts")
        if self._pending:
            self._integrate_pending()
        for timeline in self._timelines.values():
            yield from timeline

    # ------------------------------------------------------------------
    # derived maintenance
    # ------------------------------------------------------------------
    def refresh_follower_counts(self) -> None:
        """Copy graph degrees into ``profile.followers``.

        Call once after graph construction so the profile metadata agrees
        with the connections API, as it would on a real platform.
        """
        for user_id, profile in self._profiles.items():
            profile.followers = self.graph.degree(user_id)
