"""The platform's complete data store.

This is the "firehose view" only the platform operator has.  The
:mod:`repro.api` layer exposes restricted, paginated, rate-limited slices of
it; :mod:`repro.groundtruth` computes exact aggregates from it.  Keeping the
store authoritative and the API restrictive is what lets us measure true
relative error for every estimator, exactly as the paper does with its
Streaming-API ground-truth corpus (§3.2, §6.1).

Indexes maintained:

* per-user timelines, kept sorted by timestamp (newest last);
* per-keyword posting log ``[(timestamp, user_id, post_id), ...]`` sorted by
  time — powers both the simulated search API and ground truth;
* per-keyword first-mention time per user — the quantity that defines the
  paper's level-by-level structure (§4.2.1).
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import PlatformError
from repro.graph.social_graph import SocialGraph
from repro.platform.posts import Post
from repro.platform.users import UserProfile


class MicroblogStore:
    """Authoritative container of users, posts and the social graph."""

    def __init__(self, graph: Optional[SocialGraph] = None) -> None:
        self.graph = graph if graph is not None else SocialGraph()
        self._profiles: Dict[int, UserProfile] = {}
        self._timelines: Dict[int, List[Post]] = {}
        self._keyword_log: Dict[str, List[Tuple[float, int, int]]] = {}
        self._first_mention: Dict[str, Dict[int, float]] = {}
        self._next_post_id = 0

    # ------------------------------------------------------------------
    # population
    # ------------------------------------------------------------------
    def add_user(self, profile: UserProfile) -> None:
        if profile.user_id in self._profiles:
            raise PlatformError(f"duplicate user id {profile.user_id}")
        self._profiles[profile.user_id] = profile
        self._timelines[profile.user_id] = []
        self.graph.add_node(profile.user_id)

    def new_post_id(self) -> int:
        post_id = self._next_post_id
        self._next_post_id += 1
        return post_id

    def add_post(self, post: Post) -> None:
        """Insert *post*, maintaining all indexes.

        Posts may arrive out of timestamp order (cascades interleave), so
        the timeline insert is a bisect, not an append.
        """
        if post.user_id not in self._profiles:
            raise PlatformError(f"post by unknown user {post.user_id}")
        timeline = self._timelines[post.user_id]
        bisect.insort(timeline, post, key=lambda p: p.timestamp)
        for keyword in post.keywords:
            log = self._keyword_log.setdefault(keyword, [])
            bisect.insort(log, (post.timestamp, post.user_id, post.post_id))
            mentions = self._first_mention.setdefault(keyword, {})
            previous = mentions.get(post.user_id)
            if previous is None or post.timestamp < previous:
                mentions[post.user_id] = post.timestamp

    # ------------------------------------------------------------------
    # users
    # ------------------------------------------------------------------
    def profile(self, user_id: int) -> UserProfile:
        try:
            return self._profiles[user_id]
        except KeyError:
            raise PlatformError(f"unknown user {user_id}") from None

    def has_user(self, user_id: int) -> bool:
        return user_id in self._profiles

    def user_ids(self) -> List[int]:
        return list(self._profiles)

    @property
    def num_users(self) -> int:
        return len(self._profiles)

    @property
    def num_posts(self) -> int:
        return self._next_post_id

    # ------------------------------------------------------------------
    # timelines and keyword access
    # ------------------------------------------------------------------
    def timeline(self, user_id: int) -> List[Post]:
        """Full timeline of *user_id*, oldest first."""
        try:
            return list(self._timelines[user_id])
        except KeyError:
            raise PlatformError(f"unknown user {user_id}") from None

    def timeline_length(self, user_id: int) -> int:
        try:
            return len(self._timelines[user_id])
        except KeyError:
            raise PlatformError(f"unknown user {user_id}") from None

    def keywords(self) -> List[str]:
        return list(self._keyword_log)

    def keyword_posts(
        self, keyword: str, start: float = float("-inf"), end: float = float("inf")
    ) -> Iterator[Tuple[float, int, int]]:
        """All ``(timestamp, user_id, post_id)`` mentions of *keyword* in
        ``[start, end)``, oldest first."""
        log = self._keyword_log.get(keyword.lower(), [])
        lo = bisect.bisect_left(log, (start,))
        for entry in log[lo:]:
            if entry[0] >= end:
                break
            yield entry

    def users_mentioning(
        self, keyword: str, start: float = float("-inf"), end: float = float("inf")
    ) -> List[int]:
        """Distinct users with >= 1 mention of *keyword* in ``[start, end)``."""
        seen: Dict[int, None] = {}
        for _, user_id, _ in self.keyword_posts(keyword, start, end):
            seen.setdefault(user_id)
        return list(seen)

    def first_mention_time(self, keyword: str, user_id: int) -> Optional[float]:
        """When *user_id* first posted *keyword*, or None if never."""
        return self._first_mention.get(keyword.lower(), {}).get(user_id)

    def first_mention_times(self, keyword: str) -> Dict[int, float]:
        """Copy of the full first-mention map for *keyword*."""
        return dict(self._first_mention.get(keyword.lower(), {}))

    def all_posts(self) -> Iterator[Post]:
        """Every post on the platform (firehose order: per-user, by time)."""
        for timeline in self._timelines.values():
            yield from timeline

    # ------------------------------------------------------------------
    # derived maintenance
    # ------------------------------------------------------------------
    def refresh_follower_counts(self) -> None:
        """Copy graph degrees into ``profile.followers``.

        Call once after graph construction so the profile metadata agrees
        with the connections API, as it would on a real platform.
        """
        for user_id, profile in self._profiles.items():
            profile.followers = self.graph.degree(user_id)
