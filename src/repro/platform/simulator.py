"""End-to-end platform builder.

``build_platform`` assembles everything the experiments need: a social
graph from a chosen generative model, user profiles, background (non-
keyword) posts, and one cascade per configured keyword.  The result bundles
the authoritative :class:`~repro.platform.store.MicroblogStore` with the
platform's API profile and a simulated clock positioned at the end of the
horizon — "now", from which the search API's recency window is measured.

Construction is deterministic given ``config.seed``; benchmarks rely on
this to share one cached platform across many estimator runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Sequence, Union

import numpy as np

from repro._rng import ensure_rng, spawn
from repro.errors import PlatformError
from repro.graph.generators import (
    barabasi_albert_graph,
    community_graph,
    erdos_renyi_graph,
    watts_strogatz_graph,
)
from repro.graph.social_graph import SocialGraph
from repro.platform.cascade import CascadeParams, CascadeResult, run_cascade
from repro.platform.clock import DAY, SimulatedClock
from repro.platform.frozen import FrozenStore
from repro.platform.posts import Post
from repro.platform.profiles import TWITTER, PlatformProfile
from repro.platform.store import MicroblogStore
from repro.platform.users import generate_profile, generate_profiles
from repro.platform.workload import KeywordSpec, standard_keywords

GRAPH_MODELS = ("community", "barabasi_albert", "watts_strogatz", "erdos_renyi")
DATA_PLANES = ("frozen", "mmap", "legacy", "baseline")
"""Data-plane modes for :func:`build_platform`:

* ``"frozen"`` (default) — vectorized columnar build, compiled at the end
  to an immutable :class:`~repro.platform.frozen.FrozenStore` with a CSR
  social graph; the fast serving path every estimator should use.
* ``"mmap"`` — the *same* draws as ``"frozen"`` (bit-identical platform
  data), but built out of core: column batches stream to an on-disk spool
  in ``build_chunk_rows``-bounded chunks, the freeze-time sorts run as
  external passes, and the resulting :class:`FrozenStore` serves every
  column as an ``np.memmap`` view of the sharded layout.  Peak build RSS
  stays flat in the post count; see :mod:`repro.platform.outofcore`.
* ``"legacy"`` — the *same* vectorized build (identical RNG draws, hence
  identical platform data), served through the mutable dict/list store and
  dict-of-sets graph.  Exists so tests can pin frozen/legacy equivalence.
* ``"baseline"`` — the pre-columnar scalar build: one python-rng draw and
  one ``bisect.insort`` per post.  Byte-identical to historical platforms
  for a given seed; kept as the benchmark reference point.
"""


@dataclass(frozen=True)
class PlatformConfig:
    """Everything needed to deterministically build one platform."""

    num_users: int = 20_000
    graph_model: str = "community"
    graph_params: Dict[str, float] = field(default_factory=dict)
    horizon_days: float = 304.0
    """Jan 1 – Oct 31 2013 is 304 days, the paper's ground-truth window."""
    keywords: Sequence[KeywordSpec] = field(default_factory=standard_keywords)
    cascade_params: CascadeParams = field(default_factory=CascadeParams)
    background_posts_mean: float = 45.0
    """Mean keyword-free posts per user.  Sized so a typical timeline
    spans a single Twitter page (200/call) but several Google+ pages
    (20/call) — the mechanism behind the paper's §6.2 observation that
    Google+ estimations cost far more API calls."""
    profile: PlatformProfile = TWITTER
    intensity_reference_population: int = 10_000
    """Keyword intensities are per this many users; cascades scale by
    ``num_users / intensity_reference_population``."""
    seed: int = 0
    data_plane: str = "frozen"
    """See :data:`DATA_PLANES`."""
    spill_dir: Optional[str] = None
    """Directory for the ``"mmap"`` plane's on-disk columns (the sharded
    layout).  ``None`` puts them in a temp directory removed at process
    exit; a named directory persists and doubles as the saved platform."""
    build_chunk_rows: int = 262_144
    """Streaming-build chunk size (rows) for the ``"mmap"`` plane."""

    def __post_init__(self) -> None:
        if self.num_users < 2:
            raise PlatformError("need at least two users")
        if self.graph_model not in GRAPH_MODELS:
            raise PlatformError(f"unknown graph model {self.graph_model!r}; choose from {GRAPH_MODELS}")
        if self.horizon_days <= 0:
            raise PlatformError("horizon must be positive")
        if self.background_posts_mean < 0:
            raise PlatformError("background_posts_mean must be >= 0")
        if self.data_plane not in DATA_PLANES:
            raise PlatformError(
                f"unknown data plane {self.data_plane!r}; choose from {DATA_PLANES}"
            )
        if self.build_chunk_rows < 1:
            raise PlatformError("build_chunk_rows must be >= 1")

    @property
    def horizon(self) -> float:
        return self.horizon_days * DAY


@dataclass
class SimulatedPlatform:
    """A fully built platform: data store + API profile + clock."""

    config: PlatformConfig
    store: Union[MicroblogStore, FrozenStore]
    clock: SimulatedClock
    cascades: Dict[str, CascadeResult]

    @property
    def graph(self):
        """The social graph — mutable or CSR, matching the data plane."""
        return self.store.graph

    @property
    def profile(self) -> PlatformProfile:
        return self.config.profile

    @property
    def now(self) -> float:
        return self.clock.now()

    def with_profile(self, profile: PlatformProfile) -> "SimulatedPlatform":
        """Same data exposed through a different platform's API constraints.

        Used by the Google+/Tumblr benchmarks: the paper's point there is
        how *API page sizes and rate limits* change absolute query costs,
        which this isolates cleanly.
        """
        return SimulatedPlatform(
            config=replace(self.config, profile=profile),
            store=self.store,
            clock=SimulatedClock(self.clock.now()),
            cascades=self.cascades,
        )


def _build_graph(config: PlatformConfig, seed_rng, vectorized: bool = False) -> SocialGraph:
    params = dict(config.graph_params)
    if config.graph_model == "community":
        return community_graph(
            config.num_users,
            mean_community_size=float(params.get("mean_community_size", 40.0)),
            within_degree=float(params.get("within_degree", 8.0)),
            inter_edges_per_node=float(params.get("inter_edges_per_node", 1.5)),
            hub_fraction=float(params.get("hub_fraction", 0.015)),
            hub_bias=float(params.get("hub_bias", 0.5)),
            seed=seed_rng,
            vectorized=vectorized,
        )
    if config.graph_model == "barabasi_albert":
        return barabasi_albert_graph(config.num_users, int(params.get("m", 8)), seed=seed_rng)
    if config.graph_model == "watts_strogatz":
        return watts_strogatz_graph(
            config.num_users,
            int(params.get("k", 10)),
            float(params.get("p", 0.1)),
            seed=seed_rng,
        )
    return erdos_renyi_graph(config.num_users, float(params.get("p", 10.0 / config.num_users)), seed=seed_rng)


def _add_background_posts(
    store: MicroblogStore,
    config: PlatformConfig,
    rng,
    vectorized: bool = True,
    progress=None,
) -> None:
    """Keyword-free posts spread uniformly over the horizon.

    They give timelines realistic bulk (pagination and the 3 200-post cap
    are exercised) without affecting keyword aggregates.  The vectorized
    path draws every column in one numpy batch and hands the store a single
    bulk chunk; the scalar path is the original one-``bisect.insort``-per-
    post loop, kept for the ``"baseline"`` data plane.

    On a spooled store the same columns stream to disk in bounded chunks.
    The generator stream is consumed in the identical element order —
    per-user counts first, then every timestamp, then every length, then
    every like, each column chunked *within itself* — so the posts are
    bit-identical to the one-shot path while peak memory stays flat in
    the total row count.
    """
    if config.background_posts_mean == 0:
        return
    horizon = config.horizon
    if vectorized:
        nrng = np.random.default_rng(rng.getrandbits(128))
        user_ids = np.asarray(store.user_ids(), dtype=np.int64)
        # Geometric-ish count via exponential rounding keeps a long tail of
        # prolific users, mirroring the <5% of users beyond Twitter's cap.
        counts = nrng.exponential(config.background_posts_mean, size=user_ids.size).astype(np.int64)
        total = int(counts.sum())
        if total == 0:
            return
        spool = store.spool
        if spool is not None:
            _stream_background_posts(
                store, spool, nrng, user_ids, counts, total, horizon, progress
            )
            return
        users = np.repeat(user_ids, counts)
        times = nrng.random(total) * horizon
        lengths = nrng.integers(10, 141, size=total)
        likes = np.minimum((nrng.pareto(1.8, size=total) + 1.0).astype(np.int64), 10_000) - 1
        store.add_posts_columnar(users, times, lengths, likes)
        if progress is not None:
            progress.add_rows("background", total)
        return
    for user_id in store.user_ids():
        count = int(rng.expovariate(1.0 / config.background_posts_mean))
        for _ in range(count):
            store.add_post(
                Post(
                    post_id=store.new_post_id(),
                    user_id=user_id,
                    timestamp=rng.random() * horizon,
                    length=rng.randint(10, 140),
                    likes=min(int(rng.paretovariate(1.8)), 10_000) - 1,
                )
            )


def _stream_background_posts(
    store: MicroblogStore,
    spool,
    nrng: np.random.Generator,
    user_ids: np.ndarray,
    counts: np.ndarray,
    total: int,
    horizon: float,
    progress=None,
) -> None:
    """Chunked spool writes of the vectorized background columns.

    Author/post-id/keyword columns (no RNG) stream in user-block chunks;
    the three drawn columns each stream in their own chunked pass over
    the same generator, preserving the one-shot draw order exactly.
    """
    start = store.reserve_post_ids(total)
    code = spool.kw_code(None)
    chunk = spool.chunk_rows
    ends = np.cumsum(counts)
    block_start = 0
    while block_start < user_ids.size:
        row0 = int(ends[block_start - 1]) if block_start else 0
        block_end = int(np.searchsorted(ends, row0 + chunk, side="left")) + 1
        block_end = min(max(block_end, block_start + 1), user_ids.size)
        block = np.repeat(user_ids[block_start:block_end], counts[block_start:block_end])
        spool.append_column("post_user", block)
        spool.append_column(
            "post_id", np.arange(start + row0, start + row0 + block.size, dtype=np.int64)
        )
        spool.append_column("post_keyword", np.full(block.size, code, dtype=np.int64))
        if progress is not None:
            progress.add_rows("background", block.size)
        block_start = block_end
    for offset in range(0, total, chunk):
        size = min(chunk, total - offset)
        spool.append_column("post_time", nrng.random(size) * horizon)
    for offset in range(0, total, chunk):
        size = min(chunk, total - offset)
        spool.append_column("post_length", nrng.integers(10, 141, size=size))
    for offset in range(0, total, chunk):
        size = min(chunk, total - offset)
        spool.append_column(
            "post_likes",
            np.minimum((nrng.pareto(1.8, size=size) + 1.0).astype(np.int64), 10_000) - 1,
        )


def build_platform(
    config: Optional[PlatformConfig] = None,
    obs=None,
    progress=None,
) -> SimulatedPlatform:
    """Build a deterministic platform from *config* (defaults if None).

    *obs* (an :class:`~repro.obs.Observability` with a metrics registry)
    and *progress* (a :class:`~repro.platform.outofcore.BuildProgress`,
    or ``True`` for stderr echo) are optional build telemetry: chunked
    row counts per stage land in ``build.rows{stage=...}`` counters and
    the resident set in a ``build.rss_bytes`` gauge, so large ``"mmap"``
    builds give a progress signal instead of minutes of silence.
    """
    from repro.platform.outofcore import BuildProgress, ColumnSpool

    config = config or PlatformConfig()
    if progress is True or (progress is None and obs is not None):
        metrics = getattr(obs, "metrics", None) if obs is not None else None
        progress = BuildProgress(metrics=metrics, echo=progress is True)
    elif progress is None or progress is False:
        progress = None
    root_rng = ensure_rng(config.seed)
    columnar = config.data_plane != "baseline"

    graph = _build_graph(config, spawn(root_rng, "graph"), vectorized=columnar)
    spool = None
    if config.data_plane == "mmap":
        spool = ColumnSpool(
            directory=config.spill_dir,
            chunk_rows=config.build_chunk_rows,
            progress=progress,
        )
        if spool.owns_directory:
            # Temp spills live as long as the process: workers may map the
            # same files mid-run, so reclamation waits for interpreter exit.
            import atexit
            import shutil

            atexit.register(shutil.rmtree, spool.directory, True)
    store = MicroblogStore(graph, spool=spool)
    profile_rng = spawn(root_rng, "profiles")
    if columnar:
        for user_profile in generate_profiles(config.num_users, seed=profile_rng):
            store.add_user(user_profile)
    else:
        for user_id in range(config.num_users):
            store.add_user(generate_profile(user_id, seed=profile_rng))
    store.refresh_follower_counts()
    if progress is not None:
        progress.note("users")

    _add_background_posts(
        store, config, spawn(root_rng, "background"), vectorized=columnar, progress=progress
    )

    cascades: Dict[str, CascadeResult] = {}
    for spec in config.keywords:
        result = run_cascade(
            store,
            spec,
            horizon=config.horizon,
            params=config.cascade_params,
            seed=spawn(root_rng, f"cascade:{spec.keyword}"),
            intensity_scale=config.num_users / config.intensity_reference_population,
            emission="columnar" if columnar else "scalar",
        )
        cascades[spec.keyword] = result
        if progress is not None:
            progress.add_rows(f"cascade:{spec.keyword}", result.total_posts)

    served: Union[MicroblogStore, FrozenStore]
    if config.data_plane in ("frozen", "mmap"):
        served = store.freeze()
    else:
        # Drain any pending column chunks now so the store is safe to share
        # across threads without a lazy first-read integration race.
        store.flush()
        served = store

    clock = SimulatedClock(start=config.horizon)
    platform = SimulatedPlatform(config=config, store=served, clock=clock, cascades=cascades)
    if config.data_plane == "mmap":
        # Top up the spool directory with the platform-level header and
        # cascade files, making it a complete sharded layout that
        # PlatformRef / save_platform / load_platform reuse as-is.
        from repro.platform.serialization import save_platform

        save_platform(platform, served.source_dir)
        if progress is not None:
            progress.note("sharded-layout")
    return platform
