"""End-to-end platform builder.

``build_platform`` assembles everything the experiments need: a social
graph from a chosen generative model, user profiles, background (non-
keyword) posts, and one cascade per configured keyword.  The result bundles
the authoritative :class:`~repro.platform.store.MicroblogStore` with the
platform's API profile and a simulated clock positioned at the end of the
horizon — "now", from which the search API's recency window is measured.

Construction is deterministic given ``config.seed``; benchmarks rely on
this to share one cached platform across many estimator runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Sequence

from repro._rng import ensure_rng, spawn
from repro.errors import PlatformError
from repro.graph.generators import (
    barabasi_albert_graph,
    community_graph,
    erdos_renyi_graph,
    watts_strogatz_graph,
)
from repro.graph.social_graph import SocialGraph
from repro.platform.cascade import CascadeParams, CascadeResult, run_cascade
from repro.platform.clock import DAY, SimulatedClock
from repro.platform.posts import Post
from repro.platform.profiles import TWITTER, PlatformProfile
from repro.platform.store import MicroblogStore
from repro.platform.users import generate_profile
from repro.platform.workload import KeywordSpec, standard_keywords

GRAPH_MODELS = ("community", "barabasi_albert", "watts_strogatz", "erdos_renyi")


@dataclass(frozen=True)
class PlatformConfig:
    """Everything needed to deterministically build one platform."""

    num_users: int = 20_000
    graph_model: str = "community"
    graph_params: Dict[str, float] = field(default_factory=dict)
    horizon_days: float = 304.0
    """Jan 1 – Oct 31 2013 is 304 days, the paper's ground-truth window."""
    keywords: Sequence[KeywordSpec] = field(default_factory=standard_keywords)
    cascade_params: CascadeParams = field(default_factory=CascadeParams)
    background_posts_mean: float = 45.0
    """Mean keyword-free posts per user.  Sized so a typical timeline
    spans a single Twitter page (200/call) but several Google+ pages
    (20/call) — the mechanism behind the paper's §6.2 observation that
    Google+ estimations cost far more API calls."""
    profile: PlatformProfile = TWITTER
    intensity_reference_population: int = 10_000
    """Keyword intensities are per this many users; cascades scale by
    ``num_users / intensity_reference_population``."""
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_users < 2:
            raise PlatformError("need at least two users")
        if self.graph_model not in GRAPH_MODELS:
            raise PlatformError(f"unknown graph model {self.graph_model!r}; choose from {GRAPH_MODELS}")
        if self.horizon_days <= 0:
            raise PlatformError("horizon must be positive")
        if self.background_posts_mean < 0:
            raise PlatformError("background_posts_mean must be >= 0")

    @property
    def horizon(self) -> float:
        return self.horizon_days * DAY


@dataclass
class SimulatedPlatform:
    """A fully built platform: data store + API profile + clock."""

    config: PlatformConfig
    store: MicroblogStore
    clock: SimulatedClock
    cascades: Dict[str, CascadeResult]

    @property
    def graph(self) -> SocialGraph:
        return self.store.graph

    @property
    def profile(self) -> PlatformProfile:
        return self.config.profile

    @property
    def now(self) -> float:
        return self.clock.now()

    def with_profile(self, profile: PlatformProfile) -> "SimulatedPlatform":
        """Same data exposed through a different platform's API constraints.

        Used by the Google+/Tumblr benchmarks: the paper's point there is
        how *API page sizes and rate limits* change absolute query costs,
        which this isolates cleanly.
        """
        return SimulatedPlatform(
            config=replace(self.config, profile=profile),
            store=self.store,
            clock=SimulatedClock(self.clock.now()),
            cascades=self.cascades,
        )


def _build_graph(config: PlatformConfig, seed_rng) -> SocialGraph:
    params = dict(config.graph_params)
    if config.graph_model == "community":
        return community_graph(
            config.num_users,
            mean_community_size=float(params.get("mean_community_size", 40.0)),
            within_degree=float(params.get("within_degree", 8.0)),
            inter_edges_per_node=float(params.get("inter_edges_per_node", 1.5)),
            hub_fraction=float(params.get("hub_fraction", 0.015)),
            hub_bias=float(params.get("hub_bias", 0.5)),
            seed=seed_rng,
        )
    if config.graph_model == "barabasi_albert":
        return barabasi_albert_graph(config.num_users, int(params.get("m", 8)), seed=seed_rng)
    if config.graph_model == "watts_strogatz":
        return watts_strogatz_graph(
            config.num_users,
            int(params.get("k", 10)),
            float(params.get("p", 0.1)),
            seed=seed_rng,
        )
    return erdos_renyi_graph(config.num_users, float(params.get("p", 10.0 / config.num_users)), seed=seed_rng)


def _add_background_posts(store: MicroblogStore, config: PlatformConfig, rng) -> None:
    """Keyword-free posts spread uniformly over the horizon.

    They give timelines realistic bulk (pagination and the 3 200-post cap
    are exercised) without affecting keyword aggregates.
    """
    if config.background_posts_mean == 0:
        return
    horizon = config.horizon
    for user_id in store.user_ids():
        # Geometric-ish count via exponential rounding keeps a long tail of
        # prolific users, mirroring the <5% of users beyond Twitter's cap.
        count = int(rng.expovariate(1.0 / config.background_posts_mean))
        for _ in range(count):
            store.add_post(
                Post(
                    post_id=store.new_post_id(),
                    user_id=user_id,
                    timestamp=rng.random() * horizon,
                    length=rng.randint(10, 140),
                    likes=min(int(rng.paretovariate(1.8)), 10_000) - 1,
                )
            )


def build_platform(config: Optional[PlatformConfig] = None) -> SimulatedPlatform:
    """Build a deterministic platform from *config* (defaults if None)."""
    config = config or PlatformConfig()
    root_rng = ensure_rng(config.seed)

    graph = _build_graph(config, spawn(root_rng, "graph"))
    store = MicroblogStore(graph)
    profile_rng = spawn(root_rng, "profiles")
    for user_id in range(config.num_users):
        store.add_user(generate_profile(user_id, seed=profile_rng))
    store.refresh_follower_counts()

    _add_background_posts(store, config, spawn(root_rng, "background"))

    cascades: Dict[str, CascadeResult] = {}
    for spec in config.keywords:
        result = run_cascade(
            store,
            spec,
            horizon=config.horizon,
            params=config.cascade_params,
            seed=spawn(root_rng, f"cascade:{spec.keyword}"),
            intensity_scale=config.num_users / config.intensity_reference_population,
        )
        cascades[spec.keyword] = result

    clock = SimulatedClock(start=config.horizon)
    return SimulatedPlatform(config=config, store=store, clock=clock, cascades=cascades)
