"""Keyword workload shapes.

Figure 7 of the paper plots the ground-truth frequency over time of three
keyword archetypes:

* ``privacy`` — "a relatively low frequency term with occasional spikes";
* ``new york`` — "a perpetually popular and high frequency keyword";
* ``boston`` — "medium frequency but a singular spike on Apr 15, 2013"
  (the Marathon bombing).

A :class:`KeywordSpec` captures one keyword's *exogenous seeding intensity*
over the simulation horizon — how often users start talking about it for
reasons outside the social graph (news, TV, ...).  The cascade model
(:mod:`repro.platform.cascade`) then adds the endogenous, edge-correlated
spread.  :func:`standard_keywords` also covers the seven Table 2/Table 3
keywords with plausible shape assignments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from repro.errors import PlatformError
from repro.platform.clock import DAY

IntensityFn = Callable[[float], float]
"""Maps a simulated timestamp to an exogenous seeding rate (seeds/day)."""


@dataclass(frozen=True)
class KeywordSpec:
    """One keyword's exogenous arrival process.

    ``intensity(t)`` is in expected new exogenous adopters per day at time
    *t*; ``adoption_probability`` scales how virally the keyword spreads
    along edges once seeded (see :class:`~repro.platform.cascade.CascadeParams`).
    """

    keyword: str
    intensity: IntensityFn
    adoption_probability: float = 0.30

    def expected_seeds(self, horizon: float, step: float = DAY) -> float:
        """Riemann approximation of total exogenous seeds over the horizon."""
        total = 0.0
        t = 0.0
        while t < horizon:
            total += self.intensity(t) * (min(t + step, horizon) - t) / DAY
            t += step
        return total


# ----------------------------------------------------------------------
# intensity shape constructors
# ----------------------------------------------------------------------
def constant_intensity(rate_per_day: float) -> IntensityFn:
    """Flat exogenous rate — the "perpetually popular" shape (new york)."""
    if rate_per_day < 0:
        raise PlatformError("rate must be non-negative")
    return lambda t: rate_per_day


def spiky_intensity(
    base_per_day: float, spikes: Sequence[tuple], spike_width_days: float = 3.0
) -> IntensityFn:
    """Low base rate plus Gaussian bumps: ``spikes = [(day, height), ...]``.

    The "privacy" shape — quiet with occasional news-driven bursts (the
    paper's example is the Snowden disclosures).
    """
    if base_per_day < 0 or spike_width_days <= 0:
        raise PlatformError("base rate must be >= 0 and spike width > 0")
    centers = [(day * DAY, height) for day, height in spikes]
    width = spike_width_days * DAY

    def intensity(t: float) -> float:
        rate = base_per_day
        for center, height in centers:
            rate += height * math.exp(-0.5 * ((t - center) / width) ** 2)
        return rate

    return intensity


def event_intensity(
    base_per_day: float, event_day: float, peak_per_day: float, decay_days: float = 5.0
) -> IntensityFn:
    """Medium base with one sharp event followed by exponential decay.

    The "boston" shape: a singular spike (day 104 ≈ Apr 15, 2013 relative
    to the Jan 1 epoch) that decays over about a week.
    """
    if base_per_day < 0 or peak_per_day < 0 or decay_days <= 0:
        raise PlatformError("rates must be >= 0 and decay > 0")
    event_t = event_day * DAY
    decay = decay_days * DAY

    def intensity(t: float) -> float:
        if t < event_t:
            return base_per_day
        return base_per_day + peak_per_day * math.exp(-(t - event_t) / decay)

    return intensity


def fading_intensity(
    initial_per_day: float, half_life_days: float, floor_per_day: float = 0.0
) -> IntensityFn:
    """Interest that halves every *half_life_days* — old news (fiscalcliff).

    ``floor_per_day`` keeps a trickle of residual chatter so the keyword
    never vanishes from the search API's recency window (a keyword with
    zero recent posters cannot seed any walk)."""
    if initial_per_day < 0 or half_life_days <= 0 or floor_per_day < 0:
        raise PlatformError("rates must be >= 0 and half-life > 0")
    half_life = half_life_days * DAY
    return lambda t: max(initial_per_day * 0.5 ** (t / half_life), floor_per_day)


# ----------------------------------------------------------------------
# standard catalogue
# ----------------------------------------------------------------------
def standard_keywords(scale: float = 1.0) -> List[KeywordSpec]:
    """The keyword catalogue used across benchmarks.

    Includes the paper's three Figure 7 archetypes plus the seven Table 2 /
    Table 3 keywords.  *scale* multiplies every exogenous rate, letting
    benchmarks trade population size for runtime without changing shape.
    """
    if scale <= 0:
        raise PlatformError("scale must be positive")

    def scaled(fn: IntensityFn) -> IntensityFn:
        return lambda t: scale * fn(t)

    # Intensities are calibrated per 10k users over the 304-day horizon so
    # each keyword's population is a small fraction of the platform —
    # keyword-conditioned populations being small relative to the platform
    # is the core difficulty the paper addresses (§1: 0.4% for privacy).
    # Adoption probabilities are calibrated jointly with the community
    # graph and weak-tie damping (see CascadeParams): high enough that a
    # wave saturates the communities it reaches (producing the Table 2
    # intra/adjacent-heavy edge taxonomy), low enough across weak ties
    # that the platform never saturates globally.
    catalogue = [
        KeywordSpec(
            "privacy",
            scaled(spiky_intensity(0.25, spikes=[(60, 1.5), (157, 6.0), (230, 2.0)])),
            adoption_probability=0.30,
        ),
        KeywordSpec("new york", scaled(constant_intensity(2.0)), adoption_probability=0.27),
        KeywordSpec(
            "boston",
            scaled(event_intensity(0.5, event_day=104, peak_per_day=17.0)),
            adoption_probability=0.33,
        ),
        KeywordSpec(
            "fiscalcliff",
            scaled(fading_intensity(6.0, half_life_days=25, floor_per_day=0.5)),
            0.30,
        ),
        KeywordSpec(
            "super bowl",
            scaled(spiky_intensity(0.4, spikes=[(34, 15.0)], spike_width_days=2.0)),
            adoption_probability=0.36,
        ),
        KeywordSpec(
            "obamacare",
            scaled(spiky_intensity(0.75, spikes=[(270, 6.0)])),
            adoption_probability=0.30,
        ),
        KeywordSpec("tunisia", scaled(constant_intensity(0.5)), adoption_probability=0.24),
        KeywordSpec("simvastatin", scaled(constant_intensity(0.35)), adoption_probability=0.18),
        KeywordSpec(
            "oprah winfrey",
            scaled(spiky_intensity(0.6, spikes=[(15, 3.0), (200, 3.5)])),
            adoption_probability=0.27,
        ),
    ]
    return catalogue


def keyword_catalogue_by_name(scale: float = 1.0) -> Dict[str, KeywordSpec]:
    """Name -> spec mapping over :func:`standard_keywords`."""
    return {spec.keyword: spec for spec in standard_keywords(scale)}
