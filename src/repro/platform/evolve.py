"""Delta ingestion over the frozen data plane: freeze-then-append.

The source paper estimates aggregates over a platform frozen at crawl
time; *Evolving Twitter* (arXiv:1510.01091) shows the real graph drifts
continuously.  This module turns build-then-freeze into
**freeze-then-append**:

* :class:`DeltaBatch` — one ingestion unit: new users, new undirected
  edges, and columnar post batches (the same shape
  :meth:`~repro.platform.store.MicroblogStore.add_posts_columnar` takes).
* :class:`OverlayStore` — a :class:`~repro.platform.frozen.FrozenStore`
  subclass that stays *readable* while accepting deltas.  Each
  :meth:`~OverlayStore.append` stitches the delta into the frozen
  columns and compiled indexes **incrementally**: untouched users'
  timeline runs are block-copied, only delta-touched users and keywords
  are re-sorted, and the CSR graph is merged with one vectorized
  lexsort instead of the per-node python loop a full
  :meth:`CSRGraph.from_graph` rebuild pays.  The resulting serving
  state is bit-identical — columns, indexes, CSR rows — to freezing a
  monolithic rebuild of base+tail (the ``evolve`` test tier pins this
  property for random delta schedules).
* :meth:`OverlayStore.compact` — re-freezes frozen+tail into a plain
  :class:`FrozenStore`: array-sharing on the RAM plane, a fresh sharded
  on-disk layout (served via ``np.memmap``) on the mmap plane.
* :func:`apply_delta_to_store` — the rebuild comparator: replays a
  delta onto a mutable :class:`MicroblogStore` whose ``freeze()`` is
  the ground truth every overlay must match.

Epoch accounting: ``delta_epoch`` counts applied deltas and is folded
into :func:`repro.core.reuse.platform_fingerprint`, so every reuse
cache keyed on the platform re-keys the moment a delta lands.
:meth:`compact` carries the epoch over — compaction changes the
physical layout, never the content, so warm caches stay sound.

Mapped-base caveat: appending to an overlay whose base serves from
``np.memmap`` materialises the (concatenated) columns in RAM; call
:meth:`compact` with a directory to return to mapped serving.
"""

from __future__ import annotations

import atexit
import os
import random
import shutil
import tempfile
from collections.abc import Mapping
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.errors import PlatformError
from repro.graph.csr import CSRGraph
from repro.platform.clock import DAY
from repro.platform.frozen import FrozenStore
from repro.platform.users import UserProfile, generate_profile

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.platform.simulator import SimulatedPlatform
    from repro.platform.store import MicroblogStore

__all__ = [
    "DeltaBatch",
    "DeltaStats",
    "DeltaTail",
    "OverlayStore",
    "PostDelta",
    "apply_delta_to_store",
    "evolve_platform",
    "store_divergences",
    "synthesize_delta",
]


# ----------------------------------------------------------------------
# delta payloads
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PostDelta:
    """One columnar post batch: all rows share a single keyword (or none).

    Mirrors :meth:`MicroblogStore.add_posts_columnar`'s contract so the
    same object can feed both the overlay and the rebuild comparator.
    """

    user_ids: np.ndarray
    timestamps: np.ndarray
    lengths: np.ndarray
    likes: np.ndarray
    keyword: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "user_ids", np.ascontiguousarray(self.user_ids, dtype=np.int64)
        )
        object.__setattr__(
            self, "timestamps", np.ascontiguousarray(self.timestamps, dtype=np.float64)
        )
        object.__setattr__(
            self, "lengths", np.ascontiguousarray(self.lengths, dtype=np.int64)
        )
        object.__setattr__(
            self, "likes", np.ascontiguousarray(self.likes, dtype=np.int64)
        )
        sizes = {self.user_ids.size, self.timestamps.size, self.lengths.size, self.likes.size}
        if len(sizes) > 1:
            raise PlatformError(f"post delta columns have unequal lengths: {sizes}")

    @property
    def size(self) -> int:
        return int(self.timestamps.size)


@dataclass(frozen=True)
class DeltaBatch:
    """One ingestion unit: users, undirected edges, and post batches.

    Application order (shared by overlay and comparator): users first,
    then edges (which may reference the new users), then post batches in
    sequence — post ids are assigned in batch order.
    """

    new_users: Tuple[UserProfile, ...] = ()
    new_edges: np.ndarray = field(default_factory=lambda: np.empty((0, 2), dtype=np.int64))
    posts: Tuple[PostDelta, ...] = ()

    def __post_init__(self) -> None:
        edges = np.ascontiguousarray(self.new_edges, dtype=np.int64).reshape(-1, 2)
        object.__setattr__(self, "new_edges", edges)

    @property
    def num_posts(self) -> int:
        return sum(batch.size for batch in self.posts)


@dataclass(frozen=True)
class DeltaStats:
    """What one :meth:`OverlayStore.append` actually ingested."""

    epoch: int
    posts: int
    users: int
    edges: int
    """Accepted (non-duplicate) undirected edges."""
    keywords: Tuple[str, ...]
    """Keywords whose indexes were re-stitched by this delta."""
    max_time: Optional[float]
    """Latest post timestamp in the delta (clock-advance hint)."""


@dataclass
class DeltaTail:
    """Bookkeeping for everything appended since the last freeze/compact.

    The stitched rows live inside the overlay's merged columns (the tail
    is the suffix ``[base_rows:]`` of every post column); this records
    the boundary and the accumulated delta volume for diagnostics and
    the ``repro evolve`` report.
    """

    base_rows: int
    base_users: int
    base_edges: int
    rows: int = 0
    users: int = 0
    edges: int = 0
    epochs: int = 0
    keywords: Tuple[str, ...] = ()

    def record(self, stats: DeltaStats) -> None:
        self.rows += stats.posts
        self.users += stats.users
        self.edges += stats.edges
        self.epochs += 1
        merged = dict.fromkeys(self.keywords)
        merged.update(dict.fromkeys(stats.keywords))
        self.keywords = tuple(merged)


class _OverlayProfiles(Mapping):
    """Chained id->profile mapping: frozen base plus appended users.

    Iteration order is base insertion order followed by appended users
    in arrival order — the order a rebuilt mutable store's profile dict
    would have.  Works over a plain dict or a lazy
    :class:`~repro.platform.users.ColumnProfiles` base without copying
    either.
    """

    __slots__ = ("_base", "_extra")

    def __init__(self, base: Mapping) -> None:
        self._base = base
        self._extra: Dict[int, UserProfile] = {}

    def add(self, profile: UserProfile) -> None:
        if profile.user_id in self:
            raise PlatformError(f"duplicate user id {profile.user_id}")
        self._extra[profile.user_id] = profile

    def __getitem__(self, user_id: int) -> UserProfile:
        try:
            return self._base[user_id]
        except KeyError:
            return self._extra[user_id]

    def __contains__(self, user_id: object) -> bool:
        return user_id in self._base or user_id in self._extra

    def __iter__(self) -> Iterator[int]:
        yield from self._base
        yield from self._extra

    def __len__(self) -> int:
        return len(self._base) + len(self._extra)


# ----------------------------------------------------------------------
# the overlay store
# ----------------------------------------------------------------------
class OverlayStore(FrozenStore):
    """A frozen store that accepts deltas while staying fully readable.

    Construction shares every column and compiled index with *base*
    (zero copies beyond the user-order list); :meth:`append` folds a
    :class:`DeltaBatch` into the serving state incrementally.  All
    inherited read methods — timelines, keyword windows, first-mention
    columns, the classification fast path — serve the merged state with
    no overlay-specific branches, because the merge maintains exactly
    the fields :meth:`FrozenStore._compile_indexes` would have built.
    The classic mutators (``add_post`` et al.) still raise: the only
    write path is whole-delta ingestion, which is what keeps every
    intermediate state equivalent to *some* monolithic freeze.
    """

    def __init__(self, base: FrozenStore) -> None:
        if not isinstance(base, FrozenStore):
            raise PlatformError(
                "OverlayStore wraps a FrozenStore; freeze the build first "
                "(data_plane='frozen' or 'mmap')"
            )
        self.base = base
        super().__init__(
            graph=base.graph,
            profiles=_OverlayProfiles(base._profiles),
            user_order=list(base._user_order),
            post_user=base.post_user,
            post_time=base.post_time,
            post_id=base.post_id,
            post_length=base.post_length,
            post_likes=base.post_likes,
            post_keyword=base.post_keyword,
            keyword_names=list(base._keyword_names),
            multi_keywords=dict(base._multi),
            next_post_id=base._next_post_id,
            precompiled=base.compiled_indexes(),
            source_dir=base.source_dir,
            storage=base.storage,
        )
        self.delta_epoch = int(getattr(base, "delta_epoch", 0))
        """Applied-delta counter; folded into the platform fingerprint so
        reuse caches re-key the moment a delta lands."""
        self.tail = DeltaTail(
            base_rows=int(self.post_id.size),
            base_users=self.num_users,
            base_edges=self.graph.num_edges,
        )

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def append(self, delta: DeltaBatch) -> DeltaStats:
        """Stitch *delta* into the serving state; returns what landed.

        Equivalent — bit-for-bit, including index orderings — to
        replaying the delta onto the mutable build store and freezing
        from scratch, but the work is proportional to the delta (plus
        one O(rows) block copy per column), not to the platform.
        A validation failure (unknown author, self-loop, duplicate user
        id) raises :class:`PlatformError`; discard the overlay then —
        partially applied deltas are not rolled back.
        """
        old_ids = np.asarray(self._sorted_user_ids)
        new_ids = self._ingest_users(delta.new_users)
        accepted = self._ingest_edges(delta.new_edges, new_ids)
        tail = self._gather_tail(delta.posts)
        if tail is not None:
            t_user, t_time, touched_kw = tail
            self._merge_timelines(old_ids, t_user)
            self._merge_keywords(touched_kw)
        elif new_ids.size:
            self._merge_timelines(old_ids, np.empty(0, np.int64))
        self._finish_indexes()
        self._tl_cache = {}
        self._refresh_followers(new_ids, accepted)
        self.source_dir = None  # any on-disk mirror is stale now
        self.delta_epoch += 1
        stats = DeltaStats(
            epoch=self.delta_epoch,
            posts=0 if tail is None else int(tail[0].size),
            users=int(new_ids.size),
            edges=int(accepted.shape[0]),
            keywords=() if tail is None else tuple(tail[2]),
            max_time=None if tail is None else float(tail[1].max()),
        )
        self.tail.record(stats)
        return stats

    # -- users ----------------------------------------------------------
    def _ingest_users(self, profiles: Tuple[UserProfile, ...]) -> np.ndarray:
        if not profiles:
            return np.empty(0, dtype=np.int64)
        for profile in profiles:
            self._profiles.add(profile)
            self._user_order.append(profile.user_id)
        new_ids = np.array([p.user_id for p in profiles], dtype=np.int64)
        self._sorted_user_ids = np.sort(
            np.concatenate([np.asarray(self._sorted_user_ids), new_ids])
        )
        return new_ids

    # -- graph ----------------------------------------------------------
    def _ingest_edges(self, edges: np.ndarray, new_ids: np.ndarray) -> np.ndarray:
        graph = self.graph
        old_ids = np.asarray(graph._ids)
        merged_ids = (
            np.sort(np.concatenate([old_ids, new_ids])) if new_ids.size else old_ids
        )
        accepted_rows: List[Tuple[int, int]] = []
        seen = set()
        for u, v in edges.tolist():
            if u == v:
                raise PlatformError(f"self-loop rejected: {u}")
            key = (u, v) if u < v else (v, u)
            if key in seen or graph.has_edge(u, v):
                continue  # duplicate edges are a no-op, as on the mutable graph
            seen.add(key)
            accepted_rows.append(key)
        accepted = np.array(accepted_rows, dtype=np.int64).reshape(-1, 2)
        if accepted.size:
            pos = np.minimum(
                np.searchsorted(merged_ids, accepted), merged_ids.size - 1
            )
            if not np.array_equal(merged_ids[pos], accepted):
                raise PlatformError("edge endpoints must all be known user ids")
        if accepted.size == 0 and new_ids.size == 0:
            return accepted
        old_counts = np.diff(np.asarray(graph.indptr))
        if accepted.size == 0:
            # New zero-degree rows only: the surviving rows keep their
            # relative order, so the indices array is reused verbatim.
            counts = np.zeros(merged_ids.size, dtype=np.int64)
            counts[np.searchsorted(merged_ids, old_ids)] = old_counts
            indptr = np.zeros(merged_ids.size + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
            indices = np.ascontiguousarray(graph.indices)
        else:
            src_all = np.concatenate(
                [np.repeat(old_ids, old_counts), accepted[:, 0], accepted[:, 1]]
            )
            dst_all = np.concatenate(
                [np.asarray(graph.indices), accepted[:, 1], accepted[:, 0]]
            )
            rows = np.searchsorted(merged_ids, src_all)
            order = np.lexsort((dst_all, rows))
            indptr = np.zeros(merged_ids.size + 1, dtype=np.int64)
            np.cumsum(np.bincount(rows, minlength=merged_ids.size), out=indptr[1:])
            indices = np.ascontiguousarray(dst_all[order])
        self.graph = CSRGraph(indptr, indices, merged_ids)
        return accepted

    # -- posts ----------------------------------------------------------
    def _gather_tail(self, batches: Tuple[PostDelta, ...]):
        """Assign post ids, validate authors, extend the six columns.

        Returns ``(tail_users, tail_times, touched keyword -> tail
        (t, u, pid) parts)`` or None for a post-free delta.
        """
        total = sum(batch.size for batch in batches)
        if total == 0:
            return None
        users_parts: List[np.ndarray] = []
        times_parts: List[np.ndarray] = []
        lengths_parts: List[np.ndarray] = []
        likes_parts: List[np.ndarray] = []
        codes_parts: List[np.ndarray] = []
        pids_parts: List[np.ndarray] = []
        touched: Dict[str, List[Tuple[np.ndarray, np.ndarray, np.ndarray]]] = {}
        ids = self._sorted_user_ids
        for batch in batches:
            if batch.size == 0:
                continue
            rows = np.minimum(np.searchsorted(ids, batch.user_ids), max(ids.size - 1, 0))
            if ids.size == 0 or not np.array_equal(ids[rows], batch.user_ids):
                raise PlatformError("post batch references unknown user ids")
            pids = np.arange(
                self._next_post_id, self._next_post_id + batch.size, dtype=np.int64
            )
            self._next_post_id += batch.size
            if batch.keyword is None:
                code = -1
            else:
                name = batch.keyword.lower()
                if name not in self._keyword_names:
                    self._keyword_names.append(name)
                code = self._keyword_names.index(name)
                touched.setdefault(name, []).append(
                    (batch.timestamps, batch.user_ids, pids)
                )
            users_parts.append(batch.user_ids)
            times_parts.append(batch.timestamps)
            lengths_parts.append(batch.lengths)
            likes_parts.append(batch.likes)
            pids_parts.append(pids)
            codes_parts.append(np.full(batch.size, code, dtype=np.int64))
        t_user = np.concatenate(users_parts)
        t_time = np.concatenate(times_parts)
        self.post_user = np.concatenate([np.asarray(self.post_user), t_user])
        self.post_time = np.concatenate([np.asarray(self.post_time), t_time])
        self.post_id = np.concatenate([np.asarray(self.post_id)] + pids_parts)
        self.post_length = np.concatenate([np.asarray(self.post_length)] + lengths_parts)
        self.post_likes = np.concatenate([np.asarray(self.post_likes)] + likes_parts)
        self.post_keyword = np.concatenate([np.asarray(self.post_keyword)] + codes_parts)
        return t_user, t_time, touched

    def _merge_timelines(self, old_ids: np.ndarray, t_user: np.ndarray) -> None:
        """Incrementally rebuild ``tl_order``/``tl_indptr``.

        *old_ids* is the pre-delta sorted id array (``_sorted_user_ids``
        already includes this delta's arrivals).  Untouched users' runs
        are block-copied with a per-entry shift; delta-touched users are
        re-sorted with one lexsort over their combined base+tail
        entries.  The ordering key is exactly the full-rebuild stable
        lexsort's: (user row, time, original row) — tail rows carry
        larger original-row indices than every base row, so timestamp
        ties resolve identically to a monolithic rebuild.
        """
        old_order = np.asarray(self._tl_order)
        old_indptr = np.asarray(self._tl_indptr)
        old_rows = old_order.size
        new_ids = self._sorted_user_ids
        old_counts = np.diff(old_indptr)
        old_pos = np.searchsorted(new_ids, old_ids)
        tail_rows = np.searchsorted(new_ids, t_user) if t_user.size else np.empty(0, np.int64)
        tail_counts = np.bincount(tail_rows, minlength=new_ids.size)
        counts = np.zeros(new_ids.size, dtype=np.int64)
        counts[old_pos] = old_counts
        counts += tail_counts
        new_indptr = np.zeros(new_ids.size + 1, dtype=np.int64)
        np.cumsum(counts, out=new_indptr[1:])
        touched = tail_counts > 0
        new_order = np.empty(old_rows + t_user.size, dtype=np.int64)

        entry_shift = np.repeat(new_indptr[:-1][old_pos] - old_indptr[:-1], old_counts)
        entry_touched = np.repeat(touched[old_pos], old_counts)
        untouched = ~entry_touched
        src_positions = np.arange(old_rows, dtype=np.int64)
        new_order[src_positions[untouched] + entry_shift[untouched]] = old_order[untouched]

        if t_user.size:
            tail_sorted = np.argsort(tail_rows, kind="stable")
            comb_rows = np.concatenate(
                [
                    old_order[entry_touched],
                    (old_rows + np.arange(t_user.size, dtype=np.int64))[tail_sorted],
                ]
            )
            comb_urows = np.concatenate(
                [
                    np.repeat(old_pos, old_counts)[entry_touched],
                    tail_rows[tail_sorted],
                ]
            )
            comb_times = np.asarray(self.post_time)[comb_rows]
            order = np.lexsort((comb_rows, comb_times, comb_urows))
            new_order[np.flatnonzero(np.repeat(touched, counts))] = comb_rows[order]

        self._tl_order = new_order
        self._tl_indptr = new_indptr

    def _merge_keywords(
        self, touched: Dict[str, List[Tuple[np.ndarray, np.ndarray, np.ndarray]]]
    ) -> None:
        """Re-sort only the delta-touched keyword logs (base order + tail,
        one ``(t, u, pid)`` lexsort each — the compile-time ordering)."""
        empty_t = np.empty(0, dtype=np.float64)
        empty_i = np.empty(0, dtype=np.int64)
        for name, parts in touched.items():
            t = np.concatenate(
                [np.asarray(self._kw_times.get(name, empty_t))] + [p[0] for p in parts]
            )
            u = np.concatenate(
                [np.asarray(self._kw_users.get(name, empty_i))] + [p[1] for p in parts]
            )
            p = np.concatenate(
                [np.asarray(self._kw_pids.get(name, empty_i))] + [pp[2] for pp in parts]
            )
            order = np.lexsort((p, u, t))
            t, u, p = t[order], u[order], p[order]
            self._kw_times[name] = t
            self._kw_users[name] = u
            self._kw_pids[name] = p
            uniq, first_idx = np.unique(u, return_index=True)
            self._kw_first_users[name] = uniq
            self._kw_first_times[name] = t[first_idx]

    def _refresh_followers(self, new_ids: np.ndarray, accepted: np.ndarray) -> None:
        """Write merged degrees into the delta-touched profiles only.

        Untouched users' degrees did not change, so this matches a full
        ``refresh_follower_counts`` over the rebuilt store.
        """
        touched = set(new_ids.tolist())
        if accepted.size:
            touched.update(accepted.reshape(-1).tolist())
        for user_id in touched:
            self._profiles[user_id].followers = self.graph.degree(user_id)

    # ------------------------------------------------------------------
    # compaction
    # ------------------------------------------------------------------
    def compact(self, directory: Optional[str] = None) -> FrozenStore:
        """Re-freeze frozen+tail into a plain :class:`FrozenStore`.

        With no *directory* on a RAM-plane overlay the compacted store
        shares the merged arrays (compaction is then O(1) — the merge
        already happened at append time).  With a *directory* — or on an
        mmap-plane overlay, which gets a temp directory reclaimed at
        process exit — the merged state is written as a fresh sharded
        layout and served back through ``np.memmap`` views.  Either way
        the result carries this overlay's ``delta_epoch``: content is
        identical, so warm caches keyed on the fingerprint stay valid.
        """
        if directory is None and self.storage != "mmap":
            compacted = FrozenStore(
                graph=self.graph,
                profiles=self._profiles,
                user_order=list(self._user_order),
                post_user=self.post_user,
                post_time=self.post_time,
                post_id=self.post_id,
                post_length=self.post_length,
                post_likes=self.post_likes,
                post_keyword=self.post_keyword,
                keyword_names=list(self._keyword_names),
                multi_keywords=dict(self._multi),
                next_post_id=self._next_post_id,
                precompiled=self.compiled_indexes(),
                source_dir=self.source_dir,
                storage="ram",
            )
        else:
            from repro.platform.serialization import dump_store_dir, load_store_dir

            if directory is None:
                directory = tempfile.mkdtemp(prefix="repro-compact-")
                atexit.register(shutil.rmtree, directory, True)
            else:
                os.makedirs(directory, exist_ok=True)
            dump_store_dir(self, directory)
            compacted = load_store_dir(directory, mmap_mode="r")
        compacted.delta_epoch = self.delta_epoch  # type: ignore[attr-defined]
        return compacted


# ----------------------------------------------------------------------
# the rebuild comparator
# ----------------------------------------------------------------------
def apply_delta_to_store(store: "MicroblogStore", delta: DeltaBatch) -> "MicroblogStore":
    """Replay *delta* onto a mutable store, in the overlay's order.

    This is the equivalence oracle: ``store.freeze()`` after replaying
    the same deltas must be bit-identical to the overlay (and to its
    :meth:`~OverlayStore.compact`).  Profiles are copied so the two
    sides never alias follower counters.
    """
    for profile in delta.new_users:
        store.add_user(replace(profile))
    for u, v in delta.new_edges.tolist():
        store.graph.add_edge(int(u), int(v))
    for batch in delta.posts:
        store.add_posts_columnar(
            batch.user_ids, batch.timestamps, batch.lengths, batch.likes, batch.keyword
        )
    store.refresh_follower_counts()
    return store


# ----------------------------------------------------------------------
# platform plumbing
# ----------------------------------------------------------------------
def evolve_platform(platform: "SimulatedPlatform") -> "SimulatedPlatform":
    """Wrap *platform*'s frozen store in an :class:`OverlayStore`.

    Returns a platform sharing the config, clock and cascades whose
    store accepts :meth:`~OverlayStore.append`; a platform already
    evolving is returned unchanged.
    """
    from repro.platform.simulator import SimulatedPlatform

    store = platform.store
    if isinstance(store, OverlayStore):
        return platform
    if not isinstance(store, FrozenStore):
        raise PlatformError(
            "evolve_platform requires a frozen data plane "
            "(build with data_plane='frozen' or 'mmap')"
        )
    return SimulatedPlatform(
        config=platform.config,
        store=OverlayStore(store),
        clock=platform.clock,
        cascades=platform.cascades,
    )


def synthesize_delta(
    platform: "SimulatedPlatform",
    *,
    seed: int,
    epoch_days: float = 7.0,
    new_users: int = 10,
    edges_per_new_user: int = 3,
    keyword_posts: int = 200,
    background_posts: int = 500,
    keywords: Optional[List[str]] = None,
) -> DeltaBatch:
    """A deterministic plausible delta for one epoch of platform life.

    New users arrive with a few follower edges into the existing graph,
    every (or the named) keyword gains fresh mentions spread over the
    next *epoch_days*, and a slab of background posts keeps timelines
    growing.  Timestamps start at the platform's current ``now``, so
    :meth:`EstimationService.advance` can move the clock to the delta's
    horizon and sliding-window queries see the new epoch.
    """
    store = platform.store
    now = platform.clock.now()
    nrng = np.random.default_rng(np.random.SeedSequence(entropy=(0x5EED, seed)))
    existing = np.asarray(store.user_ids(), dtype=np.int64)
    next_id = int(existing.max()) + 1 if existing.size else 0

    profiles = tuple(
        generate_profile(uid, seed=random.Random(f"evolve:{seed}:{uid}"))
        for uid in range(next_id, next_id + new_users)
    )
    edge_rows: List[Tuple[int, int]] = []
    for profile in profiles:
        k = min(edges_per_new_user, existing.size)
        if k:
            targets = nrng.choice(existing, size=k, replace=False)
            edge_rows.extend((profile.user_id, int(v)) for v in targets)
    edges = np.array(edge_rows, dtype=np.int64).reshape(-1, 2)

    all_ids = np.concatenate(
        [existing, np.array([p.user_id for p in profiles], dtype=np.int64)]
    )
    horizon = epoch_days * DAY

    def draw_posts(count: int, keyword: Optional[str]) -> PostDelta:
        authors = all_ids[nrng.integers(0, all_ids.size, size=count)]
        return PostDelta(
            user_ids=authors,
            timestamps=now + nrng.random(count) * horizon,
            lengths=nrng.integers(10, 141, size=count),
            likes=np.minimum((nrng.pareto(1.8, size=count) + 1.0).astype(np.int64), 10_000) - 1,
            keyword=keyword,
        )

    batches: List[PostDelta] = []
    names = keywords if keywords is not None else list(store.keywords())
    for name in names:
        if keyword_posts > 0:
            batches.append(draw_posts(keyword_posts, name))
    if background_posts > 0:
        batches.append(draw_posts(background_posts, None))
    return DeltaBatch(new_users=profiles, new_edges=edges, posts=tuple(batches))


# ----------------------------------------------------------------------
# verification
# ----------------------------------------------------------------------
def store_divergences(left: FrozenStore, right: FrozenStore) -> List[str]:
    """Bit-level comparison of two frozen stores; empty list = identical.

    Covers everything serving reads from: the six post columns, the
    compiled timeline/keyword indexes, the CSR graph arrays, keyword
    naming/code order, post-id allocation and user order.  Used by the
    ``evolve`` test tier and ``bench_evolve`` to pin overlay ≡ rebuild.
    """
    problems: List[str] = []

    def check(label: str, a, b) -> None:
        a = np.asarray(a)
        b = np.asarray(b)
        if a.dtype != b.dtype:
            problems.append(f"{label}: dtype {a.dtype} != {b.dtype}")
        elif not np.array_equal(a, b):
            problems.append(f"{label}: arrays differ")

    for name in ("post_user", "post_time", "post_id", "post_length", "post_likes", "post_keyword"):
        check(name, getattr(left, name), getattr(right, name))
    check("sorted_user_ids", left._sorted_user_ids, right._sorted_user_ids)
    check("tl_order", left._tl_order, right._tl_order)
    check("tl_indptr", left._tl_indptr, right._tl_indptr)
    if list(left._keyword_names) != list(right._keyword_names):
        problems.append(
            f"keyword order: {left._keyword_names} != {right._keyword_names}"
        )
    else:
        for name in left._keyword_names:
            check(f"kw_times[{name}]", left._kw_times[name], right._kw_times[name])
            check(f"kw_users[{name}]", left._kw_users[name], right._kw_users[name])
            check(f"kw_pids[{name}]", left._kw_pids[name], right._kw_pids[name])
            check(
                f"kw_first_users[{name}]",
                left._kw_first_users[name],
                right._kw_first_users[name],
            )
            check(
                f"kw_first_times[{name}]",
                left._kw_first_times[name],
                right._kw_first_times[name],
            )
    check("graph.indptr", left.graph.indptr, right.graph.indptr)
    check("graph.indices", left.graph.indices, right.graph.indices)
    check("graph.ids", left.graph._ids, right.graph._ids)
    if left._next_post_id != right._next_post_id:
        problems.append(f"next_post_id: {left._next_post_id} != {right._next_post_id}")
    if list(left._user_order) != list(right._user_order):
        problems.append("user insertion order differs")
    if left._multi != right._multi:
        problems.append("multi-keyword post maps differ")
    return problems
