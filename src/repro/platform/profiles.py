"""Platform API profiles: the access limitations of each microblog.

Each :class:`PlatformProfile` captures the interface constraints the paper
documents (§2, §3.2, §6.1) for the three platforms it evaluates:

* **Twitter** — search API covers only the last week; timelines capped at
  the most recent 3 200 posts, 200 per call; connections 5 000 per call;
  180 calls per 15-minute window.
* **Google+** — Activity search returns 20 results per call (the paper
  attributes Google+'s much higher absolute query costs to this);
  courtesy limit of 10 000 queries/day; gender visible on profiles;
  connections derived from co-activity.
* **Tumblr** — rich blog APIs but one request per 10 seconds; per-post
  likes exposed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import PlatformError
from repro.platform.clock import DAY, MINUTE, WEEK


@dataclass(frozen=True)
class PlatformProfile:
    """API constraints for one microblogging platform."""

    name: str
    search_window: float
    """How far back the search API reaches (seconds)."""
    search_page_size: int
    timeline_page_size: int
    timeline_cap: Optional[int]
    """Most-recent-N cap on retrievable timeline posts (None = unlimited)."""
    connections_page_size: int
    rate_limit_calls: int
    rate_limit_window: float
    """Quota: at most ``rate_limit_calls`` API calls per window (seconds)."""
    search_results_cap: Optional[int] = None
    """Top-k cap on total search results.  §2: "Other microblogs restrict
    search to top-k results where k could be in the low thousands."
    Twitter caps by *time* (the one-week window) instead, so it is None
    there; set it to model Instagram/Weibo-style interfaces."""
    exposes_gender: bool = False
    connections_are_coactivity: bool = False
    """Google+: 'connected' means co-liked/shared/commented in the last year."""

    def __post_init__(self) -> None:
        if self.search_window <= 0:
            raise PlatformError("search_window must be positive")
        if min(self.search_page_size, self.timeline_page_size, self.connections_page_size) < 1:
            raise PlatformError("page sizes must be >= 1")
        if self.timeline_cap is not None and self.timeline_cap < 1:
            raise PlatformError("timeline_cap must be >= 1 or None")
        if self.rate_limit_calls < 1 or self.rate_limit_window <= 0:
            raise PlatformError("rate limit must allow >= 1 call per positive window")
        if self.search_results_cap is not None and self.search_results_cap < 1:
            raise PlatformError("search_results_cap must be >= 1 or None")

    def calls_for_items(self, items: int, page_size: int) -> int:
        """API calls needed to page through *items* results.

        Even an empty result set costs one call — you had to ask.
        """
        if items <= 0:
            return 1
        return -(-items // page_size)  # ceil division


TWITTER = PlatformProfile(
    name="twitter",
    search_window=WEEK,
    search_page_size=100,
    timeline_page_size=200,
    timeline_cap=3200,
    connections_page_size=5000,
    rate_limit_calls=180,
    rate_limit_window=15 * MINUTE,
    exposes_gender=False,
)

GOOGLE_PLUS = PlatformProfile(
    name="google+",
    search_window=WEEK,
    search_page_size=20,
    timeline_page_size=20,
    timeline_cap=None,
    connections_page_size=100,
    rate_limit_calls=10_000,
    rate_limit_window=DAY,
    exposes_gender=True,
    connections_are_coactivity=True,
)

TUMBLR = PlatformProfile(
    name="tumblr",
    search_window=WEEK,
    search_page_size=50,
    timeline_page_size=50,
    timeline_cap=None,
    connections_page_size=200,
    rate_limit_calls=1,
    rate_limit_window=10.0,
    exposes_gender=False,
)

REDDIT = PlatformProfile(
    name="reddit",
    search_window=WEEK,
    search_page_size=100,
    timeline_page_size=100,
    timeline_cap=1000,
    connections_page_size=100,
    rate_limit_calls=1,
    rate_limit_window=2.0,  # "no more than one request every two seconds" (§2)
    search_results_cap=1000,
    exposes_gender=False,
    connections_are_coactivity=True,  # "comments on same post" (§3.2)
)

ALL_PROFILES = {
    profile.name: profile for profile in (TWITTER, GOOGLE_PLUS, TUMBLR, REDDIT)
}
