"""Simulated microblogging platform.

This subpackage is the substitute for the live 2013 Twitter/Google+/Tumblr
platforms the paper experiments on (see DESIGN.md §2).  It produces a full
synthetic platform — social graph, user profiles, timelines, and keyword
cascades with realistic adoption-time structure — that the :mod:`repro.api`
layer then exposes through the same limited, rate-metered interface the
paper's MICROBLOG-ANALYZER has to work with.
"""

from repro.platform.clock import SimulatedClock, DAY, HOUR, MINUTE, WEEK
from repro.platform.users import UserProfile, Gender
from repro.platform.posts import Post
from repro.platform.store import MicroblogStore
from repro.platform.frozen import FrozenStore
from repro.platform.cascade import CascadeParams, run_cascade
from repro.platform.workload import KeywordSpec, standard_keywords
from repro.platform.profiles import PlatformProfile, TWITTER, GOOGLE_PLUS, TUMBLR
from repro.platform.simulator import PlatformConfig, SimulatedPlatform, build_platform

__all__ = [
    "SimulatedClock",
    "MINUTE",
    "HOUR",
    "DAY",
    "WEEK",
    "UserProfile",
    "Gender",
    "Post",
    "MicroblogStore",
    "FrozenStore",
    "CascadeParams",
    "run_cascade",
    "KeywordSpec",
    "standard_keywords",
    "PlatformProfile",
    "TWITTER",
    "GOOGLE_PLUS",
    "TUMBLR",
    "PlatformConfig",
    "SimulatedPlatform",
    "build_platform",
]
