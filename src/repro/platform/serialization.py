"""Save/load simulated platforms to a single ``.npz`` archive.

Building a large platform takes seconds to minutes; benchmarks and CLI
sessions want to reuse one across processes.  The archive stores columnar
numpy arrays (edges, profile fields, post fields, adoption times) plus a
small JSON header — no pickle, so archives are portable and inspectable.

Only simulation *state* is persisted.  Function-valued configuration
(keyword intensity shapes, cascade parameters) is not — it already did
its job producing the posts; a loaded platform carries a default
:class:`PlatformConfig` with the stored scalar fields restored.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Union

import numpy as np

from repro.errors import PlatformError
from repro.graph.social_graph import SocialGraph
from repro.platform.cascade import CascadeResult
from repro.platform.clock import SimulatedClock
from repro.platform.posts import Post
from repro.platform.profiles import ALL_PROFILES
from repro.platform.simulator import PlatformConfig, SimulatedPlatform
from repro.platform.store import MicroblogStore
from repro.platform.users import Gender, UserProfile

PathLike = Union[str, os.PathLike]
FORMAT_VERSION = 1
_GENDERS = [Gender.MALE, Gender.FEMALE, Gender.UNDISCLOSED]
_GENDER_INDEX = {gender: i for i, gender in enumerate(_GENDERS)}


def save_platform(platform: SimulatedPlatform, path: PathLike) -> None:
    """Write *platform* to a ``.npz`` archive at *path*."""
    store = platform.store
    user_ids = sorted(store.user_ids())
    profiles = [store.profile(uid) for uid in user_ids]

    edges = np.array(sorted(platform.graph.edges()), dtype=np.int64).reshape(-1, 2)

    posts: List[Post] = sorted(store.all_posts(), key=lambda p: p.post_id)
    keyword_list = sorted({kw for post in posts for kw in post.keywords})
    keyword_index = {kw: i for i, kw in enumerate(keyword_list)}
    # posts carry 0 or 1 keywords in the simulator; store -1 for none and
    # a joined index string only if ever needed (multi-keyword posts are
    # encoded as a semicolon list in an auxiliary ragged column).
    post_keyword = np.full(len(posts), -1, dtype=np.int64)
    multi: Dict[int, List[int]] = {}
    for row, post in enumerate(posts):
        kws = sorted(post.keywords)
        if len(kws) == 1:
            post_keyword[row] = keyword_index[kws[0]]
        elif len(kws) > 1:
            multi[row] = [keyword_index[kw] for kw in kws]

    cascade_names = sorted(platform.cascades)
    cascade_blobs = {}
    for name in cascade_names:
        result = platform.cascades[name]
        items = sorted(result.adoption_times.items())
        cascade_blobs[f"cascade_users_{name}"] = np.array(
            [u for u, _ in items], dtype=np.int64
        )
        cascade_blobs[f"cascade_times_{name}"] = np.array(
            [t for _, t in items], dtype=np.float64
        )

    header = {
        "format_version": FORMAT_VERSION,
        "num_users": platform.config.num_users,
        "horizon_days": platform.config.horizon_days,
        "seed": platform.config.seed,
        "profile": platform.profile.name,
        "now": platform.now,
        "keywords": keyword_list,
        "cascades": [
            {"keyword": name, "total_posts": platform.cascades[name].total_posts}
            for name in cascade_names
        ],
        "multi_keyword_posts": {str(row): kws for row, kws in multi.items()},
    }

    np.savez_compressed(
        path,
        header=np.frombuffer(json.dumps(header).encode("utf-8"), dtype=np.uint8),
        user_ids=np.array(user_ids, dtype=np.int64),
        display_names=np.array([p.display_name for p in profiles], dtype=object),
        genders=np.array([_GENDER_INDEX[p.gender] for p in profiles], dtype=np.int8),
        ages=np.array([p.age for p in profiles], dtype=np.int16),
        edges=edges,
        post_user=np.array([p.user_id for p in posts], dtype=np.int64),
        post_time=np.array([p.timestamp for p in posts], dtype=np.float64),
        post_length=np.array([p.length for p in posts], dtype=np.int32),
        post_likes=np.array([p.likes for p in posts], dtype=np.int32),
        post_keyword=post_keyword,
        **cascade_blobs,
    )


def load_platform(path: PathLike) -> SimulatedPlatform:
    """Load a platform previously written by :func:`save_platform`."""
    with np.load(path, allow_pickle=True) as archive:
        header = json.loads(bytes(archive["header"]).decode("utf-8"))
        if header.get("format_version") != FORMAT_VERSION:
            raise PlatformError(
                f"unsupported platform archive version {header.get('format_version')}"
            )
        profile = ALL_PROFILES.get(header["profile"])
        if profile is None:
            raise PlatformError(f"unknown platform profile {header['profile']!r}")

        graph = SocialGraph(nodes=(int(u) for u in archive["user_ids"]))
        for u, v in archive["edges"]:
            graph.add_edge(int(u), int(v))

        store = MicroblogStore(graph)
        genders = archive["genders"]
        ages = archive["ages"]
        names = archive["display_names"]
        for index, user_id in enumerate(archive["user_ids"]):
            store.add_user(
                UserProfile(
                    user_id=int(user_id),
                    display_name=str(names[index]),
                    gender=_GENDERS[int(genders[index])],
                    age=int(ages[index]),
                )
            )
        store.refresh_follower_counts()

        keywords = header["keywords"]
        multi = {int(k): v for k, v in header["multi_keyword_posts"].items()}
        post_user = archive["post_user"]
        post_time = archive["post_time"]
        post_length = archive["post_length"]
        post_likes = archive["post_likes"]
        post_keyword = archive["post_keyword"]
        for row in range(len(post_user)):
            if row in multi:
                kws = frozenset(keywords[i] for i in multi[row])
            elif post_keyword[row] >= 0:
                kws = frozenset({keywords[int(post_keyword[row])]})
            else:
                kws = frozenset()
            store.add_post(
                Post(
                    post_id=store.new_post_id(),
                    user_id=int(post_user[row]),
                    timestamp=float(post_time[row]),
                    keywords=kws,
                    length=int(post_length[row]),
                    likes=int(post_likes[row]),
                )
            )

        cascades = {}
        for entry in header["cascades"]:
            name = entry["keyword"]
            users = archive[f"cascade_users_{name}"]
            times = archive[f"cascade_times_{name}"]
            cascades[name] = CascadeResult(
                keyword=name,
                adoption_times={int(u): float(t) for u, t in zip(users, times)},
                total_posts=int(entry["total_posts"]),
            )

        config = PlatformConfig(
            num_users=int(header["num_users"]),
            horizon_days=float(header["horizon_days"]),
            keywords=(),
            profile=profile,
            seed=int(header["seed"]),
        )
        return SimulatedPlatform(
            config=config,
            store=store,
            clock=SimulatedClock(float(header["now"])),
            cascades=cascades,
        )
