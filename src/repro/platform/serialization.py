"""Save/load simulated platforms to a single ``.npz`` archive.

Building a large platform takes seconds to minutes; benchmarks and CLI
sessions want to reuse one across processes.  The archive stores columnar
numpy arrays (edges, profile fields, post fields, adoption times) plus a
small JSON header — no pickle, so archives are portable and inspectable.

Since the data plane went columnar, the spill is a near-direct dump: the
store is frozen (a no-op for the default data plane) and its post columns
and the CSR graph's edge array are written as-is — no per-post python loop
in either direction.  Loading reconstructs a :class:`FrozenStore` straight
from the archived columns.

Only simulation *state* is persisted.  Function-valued configuration
(keyword intensity shapes, cascade parameters) is not — it already did
its job producing the posts; a loaded platform carries a default
:class:`PlatformConfig` with the stored scalar fields restored.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Tuple, Union

import numpy as np

from repro.errors import PlatformError
from repro.graph.csr import CSRGraph
from repro.platform.cascade import CascadeResult
from repro.platform.clock import SimulatedClock
from repro.platform.frozen import FrozenStore
from repro.platform.profiles import ALL_PROFILES
from repro.platform.simulator import PlatformConfig, SimulatedPlatform
from repro.platform.users import Gender, UserProfile

PathLike = Union[str, os.PathLike]
FORMAT_VERSION = 1
_GENDERS = [Gender.MALE, Gender.FEMALE, Gender.UNDISCLOSED]
_GENDER_INDEX = {gender: i for i, gender in enumerate(_GENDERS)}


def save_platform(platform: SimulatedPlatform, path: PathLike) -> None:
    """Write *platform* to a ``.npz`` archive at *path*."""
    store = platform.store
    frozen = store if isinstance(store, FrozenStore) else store.freeze()
    user_ids = np.array(sorted(frozen.user_ids()), dtype=np.int64)
    profiles = [frozen.profile(int(uid)) for uid in user_ids.tolist()]

    edges = frozen.graph.edge_array()  # (u, v) rows, u < v, lexicographic

    # Post columns in post-id order, straight from the frozen store.
    porder = np.argsort(frozen.post_id, kind="stable")
    post_user = frozen.post_user[porder]
    post_time = frozen.post_time[porder]
    sorted_pid = frozen.post_id[porder]
    post_length = frozen.post_length[porder].astype(np.int32)
    post_likes = frozen.post_likes[porder].astype(np.int32)

    # The archive indexes keywords by sorted name; remap the store's
    # first-appearance codes (-1 = no keyword survives via the sentinel
    # appended at remap[-1]).
    names = frozen.keywords()
    multi_words = frozen._multi  # intentional: spill-time access to internals
    keyword_list = sorted(set(names) | {w for words in multi_words.values() for w in words})
    keyword_index = {kw: i for i, kw in enumerate(keyword_list)}
    remap = np.array([keyword_index[n] for n in names] + [-1], dtype=np.int64)
    post_keyword = remap[frozen.post_keyword[porder]]
    multi: Dict[int, List[int]] = {}
    for pid, words in multi_words.items():
        row = int(np.searchsorted(sorted_pid, pid))
        post_keyword[row] = -1
        multi[row] = [keyword_index[w] for w in words]

    cascade_names = sorted(platform.cascades)
    cascade_blobs = {}
    for name in cascade_names:
        result = platform.cascades[name]
        items = sorted(result.adoption_times.items())
        cascade_blobs[f"cascade_users_{name}"] = np.array(
            [u for u, _ in items], dtype=np.int64
        )
        cascade_blobs[f"cascade_times_{name}"] = np.array(
            [t for _, t in items], dtype=np.float64
        )

    header = {
        "format_version": FORMAT_VERSION,
        "num_users": platform.config.num_users,
        "horizon_days": platform.config.horizon_days,
        "seed": platform.config.seed,
        "profile": platform.profile.name,
        "now": platform.now,
        "keywords": keyword_list,
        "cascades": [
            {"keyword": name, "total_posts": platform.cascades[name].total_posts}
            for name in cascade_names
        ],
        "multi_keyword_posts": {str(row): kws for row, kws in multi.items()},
    }

    np.savez_compressed(
        path,
        header=np.frombuffer(json.dumps(header).encode("utf-8"), dtype=np.uint8),
        user_ids=user_ids,
        display_names=np.array([p.display_name for p in profiles], dtype=object),
        genders=np.array([_GENDER_INDEX[p.gender] for p in profiles], dtype=np.int8),
        ages=np.array([p.age for p in profiles], dtype=np.int16),
        edges=edges,
        post_user=post_user,
        post_time=post_time,
        post_length=post_length,
        post_likes=post_likes,
        post_keyword=post_keyword,
        **cascade_blobs,
    )


def load_platform(path: PathLike) -> SimulatedPlatform:
    """Load a platform previously written by :func:`save_platform`.

    The restored platform serves from a :class:`FrozenStore` over a CSR
    graph, built directly from the archived columns — no post replay.
    """
    with np.load(path, allow_pickle=True) as archive:
        header = json.loads(bytes(archive["header"]).decode("utf-8"))
        if header.get("format_version") != FORMAT_VERSION:
            raise PlatformError(
                f"unsupported platform archive version {header.get('format_version')}"
            )
        profile = ALL_PROFILES.get(header["profile"])
        if profile is None:
            raise PlatformError(f"unknown platform profile {header['profile']!r}")

        user_ids = archive["user_ids"].astype(np.int64)
        graph = CSRGraph.from_edges(user_ids, archive["edges"])

        genders = archive["genders"]
        ages = archive["ages"]
        names = archive["display_names"]
        profiles: Dict[int, UserProfile] = {}
        for index, user_id in enumerate(user_ids.tolist()):
            profiles[user_id] = UserProfile(
                user_id=user_id,
                display_name=str(names[index]),
                gender=_GENDERS[int(genders[index])],
                age=int(ages[index]),
            )

        keywords: List[str] = header["keywords"]
        post_keyword = archive["post_keyword"].astype(np.int64)
        # Multi-keyword rows were archived with code -1 + an index list;
        # the frozen store wants the first (alphabetical) keyword's code in
        # the column and the full sorted word tuple on the side.  Post ids
        # were assigned densely at build time, so id == row.
        multi_map: Dict[int, Tuple[str, ...]] = {}
        for key, kw_idxs in header["multi_keyword_posts"].items():
            row = int(key)
            codes = sorted(int(i) for i in kw_idxs)
            multi_map[row] = tuple(keywords[i] for i in codes)
            post_keyword[row] = codes[0]

        num_posts = int(post_keyword.size)
        store = FrozenStore(
            graph=graph,
            profiles=profiles,
            user_order=user_ids.tolist(),
            post_user=archive["post_user"].astype(np.int64),
            post_time=archive["post_time"].astype(np.float64),
            post_id=np.arange(num_posts, dtype=np.int64),
            post_length=archive["post_length"].astype(np.int64),
            post_likes=archive["post_likes"].astype(np.int64),
            post_keyword=post_keyword,
            keyword_names=list(keywords),
            multi_keywords=multi_map,
            next_post_id=num_posts,
        )
        store.refresh_follower_counts()

        cascades = {}
        for entry in header["cascades"]:
            name = entry["keyword"]
            users = archive[f"cascade_users_{name}"]
            times = archive[f"cascade_times_{name}"]
            cascades[name] = CascadeResult(
                keyword=name,
                adoption_times={int(u): float(t) for u, t in zip(users, times)},
                total_posts=int(entry["total_posts"]),
            )

        config = PlatformConfig(
            num_users=int(header["num_users"]),
            horizon_days=float(header["horizon_days"]),
            keywords=(),
            profile=profile,
            seed=int(header["seed"]),
        )
        return SimulatedPlatform(
            config=config,
            store=store,
            clock=SimulatedClock(float(header["now"])),
            cascades=cascades,
        )
