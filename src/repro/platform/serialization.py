"""Save/load simulated platforms: ``.npz`` archive or sharded directory.

Building a large platform takes seconds to minutes; benchmarks and CLI
sessions want to reuse one across processes.  Two on-disk layouts:

* **``.npz`` archive** (paths ending in ``.npz``) — the historical single
  compressed file.  Columnar numpy arrays (edges, profile fields, post
  fields, adoption times) plus a small JSON header — no pickle, portable
  and inspectable.  Loading materialises every column into RAM.
* **Sharded directory** (any other path) — one raw binary file per
  column family plus ``store.json`` / ``header.json`` manifests.  This is
  the out-of-core layout: :func:`load_platform` maps every column with
  ``np.memmap`` (the default ``mmap_mode="r"``), so opening a 10M-row
  platform costs a handful of ``mmap`` calls and serving touches only
  the pages it reads.  The ``"mmap"`` build plane streams directly into
  this layout, and :class:`~repro.parallel.platform_ref.PlatformRef`
  reuses it as the process-worker spill — parent and workers share the
  same physical pages.

Since the data plane went columnar, the spill is a near-direct dump: the
store is frozen (a no-op for the default data plane) and its post columns
and the CSR graph's arrays are written as-is — no per-post python loop
in either direction.  Loading reconstructs a :class:`FrozenStore` straight
from the archived columns.

Only simulation *state* is persisted.  Function-valued configuration
(keyword intensity shapes, cascade parameters) is not — it already did
its job producing the posts; a loaded platform carries a default
:class:`PlatformConfig` with the stored scalar fields restored.
"""

from __future__ import annotations

import json
import os
import shutil
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.errors import PlatformError
from repro.graph.csr import CSRGraph
from repro.platform.cascade import CascadeResult
from repro.platform.clock import SimulatedClock
from repro.platform.frozen import CompiledIndexes, FrozenStore
from repro.platform.outofcore import (
    POST_COLUMN_DTYPES,
    STORE_MANIFEST,
    map_column_file,
    write_column_file,
)
from repro.platform.profiles import ALL_PROFILES
from repro.platform.simulator import PlatformConfig, SimulatedPlatform
from repro.platform.users import ColumnProfiles, Gender, UserProfile, profile_columns

PathLike = Union[str, os.PathLike]
FORMAT_VERSION = 1
SHARDED_HEADER = "header.json"
_GENDERS = [Gender.MALE, Gender.FEMALE, Gender.UNDISCLOSED]
_GENDER_INDEX = {gender: i for i, gender in enumerate(_GENDERS)}


def save_platform(platform: SimulatedPlatform, path: PathLike) -> None:
    """Write *platform* to *path*.

    A path ending in ``.npz`` gets the single-archive format; anything
    else becomes (or updates) a sharded layout directory.
    """
    if str(path).endswith(".npz"):
        _save_npz(platform, path)
    else:
        save_sharded(platform, path)


def _save_npz(platform: SimulatedPlatform, path: PathLike) -> None:
    """Write *platform* to a ``.npz`` archive at *path*."""
    store = platform.store
    frozen = store if isinstance(store, FrozenStore) else store.freeze()
    user_ids = np.array(sorted(frozen.user_ids()), dtype=np.int64)
    profiles = [frozen.profile(int(uid)) for uid in user_ids.tolist()]

    edges = frozen.graph.edge_array()  # (u, v) rows, u < v, lexicographic

    # Post columns in post-id order, straight from the frozen store.
    porder = np.argsort(frozen.post_id, kind="stable")
    post_user = frozen.post_user[porder]
    post_time = frozen.post_time[porder]
    sorted_pid = frozen.post_id[porder]
    post_length = frozen.post_length[porder].astype(np.int32)
    post_likes = frozen.post_likes[porder].astype(np.int32)

    # The archive indexes keywords by sorted name; remap the store's
    # first-appearance codes (-1 = no keyword survives via the sentinel
    # appended at remap[-1]).
    names = frozen.keywords()
    multi_words = frozen._multi  # intentional: spill-time access to internals
    keyword_list = sorted(set(names) | {w for words in multi_words.values() for w in words})
    keyword_index = {kw: i for i, kw in enumerate(keyword_list)}
    remap = np.array([keyword_index[n] for n in names] + [-1], dtype=np.int64)
    post_keyword = remap[frozen.post_keyword[porder]]
    multi: Dict[int, List[int]] = {}
    for pid, words in multi_words.items():
        row = int(np.searchsorted(sorted_pid, pid))
        post_keyword[row] = -1
        multi[row] = [keyword_index[w] for w in words]

    cascade_names = sorted(platform.cascades)
    cascade_blobs = {}
    for name in cascade_names:
        result = platform.cascades[name]
        items = sorted(result.adoption_times.items())
        cascade_blobs[f"cascade_users_{name}"] = np.array(
            [u for u, _ in items], dtype=np.int64
        )
        cascade_blobs[f"cascade_times_{name}"] = np.array(
            [t for _, t in items], dtype=np.float64
        )

    header = {
        "format_version": FORMAT_VERSION,
        "num_users": platform.config.num_users,
        "horizon_days": platform.config.horizon_days,
        "seed": platform.config.seed,
        "profile": platform.profile.name,
        "now": platform.now,
        "keywords": keyword_list,
        "cascades": [
            {"keyword": name, "total_posts": platform.cascades[name].total_posts}
            for name in cascade_names
        ],
        "multi_keyword_posts": {str(row): kws for row, kws in multi.items()},
    }

    np.savez_compressed(
        path,
        header=np.frombuffer(json.dumps(header).encode("utf-8"), dtype=np.uint8),
        user_ids=user_ids,
        display_names=np.array([p.display_name for p in profiles], dtype=object),
        genders=np.array([_GENDER_INDEX[p.gender] for p in profiles], dtype=np.int8),
        ages=np.array([p.age for p in profiles], dtype=np.int16),
        edges=edges,
        post_user=post_user,
        post_time=post_time,
        post_length=post_length,
        post_likes=post_likes,
        post_keyword=post_keyword,
        **cascade_blobs,
    )


def load_platform(path: PathLike, mmap_mode: Optional[str] = "r") -> SimulatedPlatform:
    """Load a platform previously written by :func:`save_platform`.

    The restored platform serves from a :class:`FrozenStore` over a CSR
    graph, built directly from the archived columns — no post replay.
    Sharded layout directories are opened with ``np.memmap`` views
    (*mmap_mode* ``"r"``; pass ``None`` to materialise into RAM);
    ``.npz`` archives always materialise.
    """
    if os.path.isdir(path):
        return load_sharded(path, mmap_mode=mmap_mode)
    with np.load(path, allow_pickle=True) as archive:
        header = json.loads(bytes(archive["header"]).decode("utf-8"))
        if header.get("format_version") != FORMAT_VERSION:
            raise PlatformError(
                f"unsupported platform archive version {header.get('format_version')}"
            )
        profile = ALL_PROFILES.get(header["profile"])
        if profile is None:
            raise PlatformError(f"unknown platform profile {header['profile']!r}")

        user_ids = archive["user_ids"].astype(np.int64)
        graph = CSRGraph.from_edges(user_ids, archive["edges"])

        genders = archive["genders"]
        ages = archive["ages"]
        names = archive["display_names"]
        profiles: Dict[int, UserProfile] = {}
        for index, user_id in enumerate(user_ids.tolist()):
            profiles[user_id] = UserProfile(
                user_id=user_id,
                display_name=str(names[index]),
                gender=_GENDERS[int(genders[index])],
                age=int(ages[index]),
            )

        keywords: List[str] = header["keywords"]
        post_keyword = archive["post_keyword"].astype(np.int64)
        # Multi-keyword rows were archived with code -1 + an index list;
        # the frozen store wants the first (alphabetical) keyword's code in
        # the column and the full sorted word tuple on the side.  Post ids
        # were assigned densely at build time, so id == row.
        multi_map: Dict[int, Tuple[str, ...]] = {}
        for key, kw_idxs in header["multi_keyword_posts"].items():
            row = int(key)
            codes = sorted(int(i) for i in kw_idxs)
            multi_map[row] = tuple(keywords[i] for i in codes)
            post_keyword[row] = codes[0]

        num_posts = int(post_keyword.size)
        store = FrozenStore(
            graph=graph,
            profiles=profiles,
            user_order=user_ids.tolist(),
            post_user=archive["post_user"].astype(np.int64),
            post_time=archive["post_time"].astype(np.float64),
            post_id=np.arange(num_posts, dtype=np.int64),
            post_length=archive["post_length"].astype(np.int64),
            post_likes=archive["post_likes"].astype(np.int64),
            post_keyword=post_keyword,
            keyword_names=list(keywords),
            multi_keywords=multi_map,
            next_post_id=num_posts,
        )
        store.refresh_follower_counts()

        cascades = {}
        for entry in header["cascades"]:
            name = entry["keyword"]
            users = archive[f"cascade_users_{name}"]
            times = archive[f"cascade_times_{name}"]
            cascades[name] = CascadeResult(
                keyword=name,
                adoption_times={int(u): float(t) for u, t in zip(users, times)},
                total_posts=int(entry["total_posts"]),
            )

        config = PlatformConfig(
            num_users=int(header["num_users"]),
            horizon_days=float(header["horizon_days"]),
            keywords=(),
            profile=profile,
            seed=int(header["seed"]),
        )
        return SimulatedPlatform(
            config=config,
            store=store,
            clock=SimulatedClock(float(header["now"])),
            cascades=cascades,
        )


# ----------------------------------------------------------------------
# sharded directory layout
# ----------------------------------------------------------------------
def _store_manifest_path(directory: PathLike) -> str:
    return os.path.join(str(directory), STORE_MANIFEST)


def save_sharded(platform: SimulatedPlatform, path: PathLike) -> None:
    """Write *platform* as a sharded layout directory at *path*.

    When the frozen store already serves from a sharded spool
    (``source_dir``) the column and index files are reused — same
    directory: left in place; different directory: copied file-by-file —
    and only the platform-level header and cascade files are (re)written.
    A RAM-resident store is dumped column-by-column.  Keyword codes are
    stored in the store's first-appearance order, **not** remapped, so a
    reloaded platform's keyword column is bit-identical to the built one.
    """
    directory = str(path)
    os.makedirs(directory, exist_ok=True)
    store = platform.store
    frozen = store if isinstance(store, FrozenStore) else store.freeze()

    source = getattr(frozen, "source_dir", None)
    if source and os.path.isfile(_store_manifest_path(source)):
        if not os.path.samefile(source, directory):
            for name in os.listdir(source):
                full = os.path.join(source, name)
                if os.path.isfile(full) and name != SHARDED_HEADER:
                    shutil.copy2(full, os.path.join(directory, name))
    else:
        dump_store_dir(frozen, directory)

    cascade_names = sorted(platform.cascades)
    cascade_files = {}
    for index, name in enumerate(cascade_names):
        result = platform.cascades[name]
        items = sorted(result.adoption_times.items())
        users_file = f"cascade{index}_users.bin"
        times_file = f"cascade{index}_times.bin"
        write_column_file(
            os.path.join(directory, users_file),
            np.array([u for u, _ in items], dtype=np.int64),
            np.int64,
        )
        write_column_file(
            os.path.join(directory, times_file),
            np.array([t for _, t in items], dtype=np.float64),
            np.float64,
        )
        cascade_files[name] = {
            "users": users_file,
            "times": times_file,
            "total_posts": result.total_posts,
        }

    header = {
        "format_version": FORMAT_VERSION,
        "layout": "sharded",
        "num_users": platform.config.num_users,
        "horizon_days": platform.config.horizon_days,
        "seed": platform.config.seed,
        "profile": platform.profile.name,
        "now": platform.now,
        "cascades": cascade_files,
    }
    with open(os.path.join(directory, SHARDED_HEADER), "w", encoding="utf-8") as handle:
        json.dump(header, handle, indent=1)


def dump_store_dir(frozen: FrozenStore, directory: str) -> None:
    """Write a frozen store's columns/indexes as shard files.

    Store-level only (no platform header/cascades) — the inverse of
    :func:`load_store_dir`.  Works on any :class:`FrozenStore`-shaped
    store, including an :class:`~repro.platform.evolve.OverlayStore`,
    which is how overlay compaction lands the merged state on disk.
    """
    for name in POST_COLUMN_DTYPES:
        write_column_file(
            os.path.join(directory, f"{name}.bin"),
            getattr(frozen, name),
            POST_COLUMN_DTYPES[name],
        )
    compiled = frozen.compiled_indexes()
    write_column_file(
        os.path.join(directory, "tl_order.bin"), compiled.tl_order, np.int64
    )
    write_column_file(
        os.path.join(directory, "tl_indptr.bin"), compiled.tl_indptr, np.int64
    )
    write_column_file(
        os.path.join(directory, "sorted_user_ids.bin"), compiled.sorted_user_ids, np.int64
    )
    keyword_names = frozen.keywords()
    kw_manifest: Dict[str, Dict[str, str]] = {}
    for code, name in enumerate(keyword_names):
        stems = {
            "times": f"kw{code}_times.bin",
            "users": f"kw{code}_users.bin",
            "pids": f"kw{code}_pids.bin",
            "first_users": f"kw{code}_first_users.bin",
            "first_times": f"kw{code}_first_times.bin",
        }
        write_column_file(
            os.path.join(directory, stems["times"]), compiled.kw_times[name], np.float64
        )
        write_column_file(
            os.path.join(directory, stems["users"]), compiled.kw_users[name], np.int64
        )
        write_column_file(
            os.path.join(directory, stems["pids"]), compiled.kw_pids[name], np.int64
        )
        write_column_file(
            os.path.join(directory, stems["first_users"]),
            compiled.kw_first_users[name],
            np.int64,
        )
        write_column_file(
            os.path.join(directory, stems["first_times"]),
            compiled.kw_first_times[name],
            np.float64,
        )
        kw_manifest[name] = stems

    graph = CSRGraph.from_graph(frozen.graph)
    write_column_file(os.path.join(directory, "graph_indptr.bin"), graph.indptr, np.int64)
    write_column_file(os.path.join(directory, "graph_indices.bin"), graph.indices, np.int64)
    write_column_file(os.path.join(directory, "graph_ids.bin"), graph._ids, np.int64)

    columns = profile_columns(frozen._profiles)
    write_column_file(os.path.join(directory, "prof_ids.bin"), columns["prof_ids"], np.int64)
    write_column_file(
        os.path.join(directory, "prof_gender.bin"), columns["prof_gender"], np.int8
    )
    write_column_file(os.path.join(directory, "prof_age.bin"), columns["prof_age"], np.int16)
    np.save(os.path.join(directory, "prof_names.npy"), columns["prof_names"])

    manifest = {
        "format_version": FORMAT_VERSION,
        "num_rows": int(frozen.post_id.size),
        "next_post_id": frozen.num_posts,
        "keyword_names": keyword_names,
        "keyword_files": kw_manifest,
        "multi_keyword_posts": {
            str(pid): list(words) for pid, words in frozen._multi.items()
        },
        "columns": {name: f"{name}.bin" for name in POST_COLUMN_DTYPES},
    }
    with open(_store_manifest_path(directory), "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=1)


def load_store_dir(path: PathLike, mmap_mode: Optional[str] = "r") -> FrozenStore:
    """Open the store half of a sharded layout as a :class:`FrozenStore`.

    Reads ``store.json`` plus the column/index/graph/profile shard files
    — no platform header or cascades required, so it also serves
    directories written by :func:`dump_store_dir` alone (overlay
    compaction targets).  With the default ``mmap_mode="r"`` every array
    is an ``np.memmap`` view; ``mmap_mode=None`` materialises into RAM.
    """
    directory = str(path)
    manifest_path = _store_manifest_path(directory)
    if not os.path.isfile(manifest_path):
        raise PlatformError(f"{directory!r} has no {STORE_MANIFEST} manifest")
    with open(manifest_path, encoding="utf-8") as handle:
        manifest = json.load(handle)
    if manifest.get("format_version") != FORMAT_VERSION:
        raise PlatformError(
            f"unsupported {STORE_MANIFEST} version {manifest.get('format_version')}"
        )

    def column(file_name: str, dtype) -> np.ndarray:
        full = os.path.join(directory, file_name)
        if mmap_mode:
            return map_column_file(full, dtype, mode=mmap_mode)
        return np.fromfile(full, dtype=dtype)

    graph = CSRGraph(
        column("graph_indptr.bin", np.int64),
        column("graph_indices.bin", np.int64),
        column("graph_ids.bin", np.int64),
    )
    prof_ids = column("prof_ids.bin", np.int64)
    profiles = ColumnProfiles(
        user_ids=prof_ids,
        names=np.load(os.path.join(directory, "prof_names.npy"), mmap_mode=mmap_mode),
        gender_codes=column("prof_gender.bin", np.int8),
        ages=column("prof_age.bin", np.int16),
        degree_of=graph.degree,
    )

    keyword_names: List[str] = list(manifest["keyword_names"])
    kw_files: Dict[str, Dict[str, str]] = manifest["keyword_files"]
    compiled = CompiledIndexes(
        sorted_user_ids=column("sorted_user_ids.bin", np.int64),
        tl_order=column("tl_order.bin", np.int64),
        tl_indptr=column("tl_indptr.bin", np.int64),
        kw_times={n: column(f["times"], np.float64) for n, f in kw_files.items()},
        kw_users={n: column(f["users"], np.int64) for n, f in kw_files.items()},
        kw_pids={n: column(f["pids"], np.int64) for n, f in kw_files.items()},
        kw_first_users={
            n: column(f["first_users"], np.int64) for n, f in kw_files.items()
        },
        kw_first_times={
            n: column(f["first_times"], np.float64) for n, f in kw_files.items()
        },
    )
    multi_map: Dict[int, Tuple[str, ...]] = {
        int(pid): tuple(words)
        for pid, words in manifest.get("multi_keyword_posts", {}).items()
    }
    return FrozenStore(
        graph=graph,
        profiles=profiles,
        user_order=prof_ids.tolist(),
        post_user=column(manifest["columns"]["post_user"], np.int64),
        post_time=column(manifest["columns"]["post_time"], np.float64),
        post_id=column(manifest["columns"]["post_id"], np.int64),
        post_length=column(manifest["columns"]["post_length"], np.int64),
        post_likes=column(manifest["columns"]["post_likes"], np.int64),
        post_keyword=column(manifest["columns"]["post_keyword"], np.int64),
        keyword_names=keyword_names,
        multi_keywords=multi_map,
        next_post_id=int(manifest["next_post_id"]),
        precompiled=compiled,
        source_dir=directory,
        storage="mmap" if mmap_mode else "ram",
    )


def load_sharded(path: PathLike, mmap_mode: Optional[str] = "r") -> SimulatedPlatform:
    """Open a sharded layout directory as a served platform.

    With the default ``mmap_mode="r"`` every column and compiled index is
    an ``np.memmap`` view — nothing is materialised until a read slices
    it, so process workers resolving the same directory share pages.
    ``mmap_mode=None`` reads everything into RAM instead.
    """
    directory = str(path)
    header_path = os.path.join(directory, SHARDED_HEADER)
    if not (os.path.isfile(_store_manifest_path(directory)) and os.path.isfile(header_path)):
        raise PlatformError(f"{directory!r} is not a sharded platform layout")
    with open(header_path, encoding="utf-8") as handle:
        header = json.load(handle)
    if header.get("format_version") != FORMAT_VERSION:
        raise PlatformError(
            f"unsupported {SHARDED_HEADER} version {header.get('format_version')}"
        )
    profile = ALL_PROFILES.get(header["profile"])
    if profile is None:
        raise PlatformError(f"unknown platform profile {header['profile']!r}")

    store = load_store_dir(directory, mmap_mode=mmap_mode)

    def column(file_name: str, dtype) -> np.ndarray:
        full = os.path.join(directory, file_name)
        if mmap_mode:
            return map_column_file(full, dtype, mode=mmap_mode)
        return np.fromfile(full, dtype=dtype)

    cascades: Dict[str, CascadeResult] = {}
    for name, entry in header["cascades"].items():
        users = column(entry["users"], np.int64)
        times = column(entry["times"], np.float64)
        cascades[name] = CascadeResult(
            keyword=name,
            adoption_times={int(u): float(t) for u, t in zip(users, times)},
            total_posts=int(entry["total_posts"]),
        )

    config = PlatformConfig(
        num_users=int(header["num_users"]),
        horizon_days=float(header["horizon_days"]),
        keywords=(),
        profile=profile,
        seed=int(header["seed"]),
    )
    return SimulatedPlatform(
        config=config,
        store=store,
        clock=SimulatedClock(float(header["now"])),
        cascades=cascades,
    )
