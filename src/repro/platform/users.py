"""User identities and profile attributes.

The paper's aggregate measures are functions of a user's profile and
timeline: number of followers (Figures 2, 8, 9), display-name length
(Figures 11, 12), gender as a predicate (Figure 13), and per-post likes
(Figure 14).  Profiles carry all of these; the platform profile decides
which fields the *API* exposes (e.g. gender is "generally missing from
Twitter profiles" — §6.2 — but present on Google+).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro._rng import RandomLike, ensure_rng

# Name fragments for synthetic display names.  Lengths span 4–20+ chars so
# AVG(display-name length) has the low variance the paper exploits in Fig. 11.
_FIRST = (
    "alex", "sam", "jo", "chris", "pat", "taylor", "jordan", "casey",
    "morgan", "riley", "avery", "quinn", "dana", "jamie", "lee", "max",
)
_LAST = (
    "smith", "johnson", "lee", "garcia", "chen", "patel", "kim", "nguyen",
    "brown", "davis", "martinez", "wilson", "anderson", "thomas", "moore",
)


class Gender(enum.Enum):
    """Profile gender attribute (used by the Figure 13 predicate)."""

    MALE = "male"
    FEMALE = "female"
    UNDISCLOSED = "undisclosed"


@dataclass
class UserProfile:
    """All true attributes of one platform user.

    ``followers`` is the user's total connection count in the undirected
    social graph — the measure behind AVG(#followers).  It is stored on the
    profile (as real platforms do) so a timeline fetch reveals it without
    paging through the connections API.
    """

    user_id: int
    display_name: str
    gender: Gender
    age: int
    followers: int = 0

    @property
    def display_name_length(self) -> int:
        return len(self.display_name)


def generate_profile(user_id: int, seed: RandomLike = None) -> UserProfile:
    """Random plausible profile for *user_id* (followers filled in later)."""
    rng = ensure_rng(seed)
    style = rng.random()
    if style < 0.4:
        name = rng.choice(_FIRST)
    elif style < 0.8:
        name = f"{rng.choice(_FIRST)} {rng.choice(_LAST)}"
    else:
        name = f"{rng.choice(_FIRST)}_{rng.choice(_LAST)}{rng.randrange(100)}"
    gender = rng.choices(
        (Gender.MALE, Gender.FEMALE, Gender.UNDISCLOSED),
        weights=(0.46, 0.44, 0.10),
    )[0]
    age = int(min(80, max(13, rng.gauss(29, 11))))
    return UserProfile(user_id=user_id, display_name=name, gender=gender, age=age)
