"""User identities and profile attributes.

The paper's aggregate measures are functions of a user's profile and
timeline: number of followers (Figures 2, 8, 9), display-name length
(Figures 11, 12), gender as a predicate (Figure 13), and per-post likes
(Figure 14).  Profiles carry all of these; the platform profile decides
which fields the *API* exposes (e.g. gender is "generally missing from
Twitter profiles" — §6.2 — but present on Google+).
"""

from __future__ import annotations

import enum
from collections.abc import Mapping
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional

import numpy as np

from repro._rng import RandomLike, ensure_rng

# Name fragments for synthetic display names.  Lengths span 4–20+ chars so
# AVG(display-name length) has the low variance the paper exploits in Fig. 11.
_FIRST = (
    "alex", "sam", "jo", "chris", "pat", "taylor", "jordan", "casey",
    "morgan", "riley", "avery", "quinn", "dana", "jamie", "lee", "max",
)
_LAST = (
    "smith", "johnson", "lee", "garcia", "chen", "patel", "kim", "nguyen",
    "brown", "davis", "martinez", "wilson", "anderson", "thomas", "moore",
)


class Gender(enum.Enum):
    """Profile gender attribute (used by the Figure 13 predicate)."""

    MALE = "male"
    FEMALE = "female"
    UNDISCLOSED = "undisclosed"


@dataclass
class UserProfile:
    """All true attributes of one platform user.

    ``followers`` is the user's total connection count in the undirected
    social graph — the measure behind AVG(#followers).  It is stored on the
    profile (as real platforms do) so a timeline fetch reveals it without
    paging through the connections API.
    """

    user_id: int
    display_name: str
    gender: Gender
    age: int
    followers: int = 0

    @property
    def display_name_length(self) -> int:
        return len(self.display_name)


GENDER_CODES = (Gender.MALE, Gender.FEMALE, Gender.UNDISCLOSED)
"""Stable int8 encoding of :class:`Gender` for columnar storage."""


class ColumnProfiles(Mapping):
    """Lazy profile mapping over columnar (possibly memmapped) attributes.

    Behaves like the ``Dict[int, UserProfile]`` the rest of the platform
    expects — same iteration order (ascending user id, matching the
    sorted dict the builders produce), same lookups — but materialises a
    :class:`UserProfile` only on access, so opening a 10M-user platform
    from disk does not allocate 10M dataclass instances up front.

    ``followers`` is filled from *degree_of* (the frozen CSR graph's
    degree) at materialisation time; materialised profiles are cached so
    repeated access returns the identical object, preserving the
    "profiles are shared mutable metadata" contract.
    """

    def __init__(
        self,
        user_ids: np.ndarray,
        names: np.ndarray,
        gender_codes: np.ndarray,
        ages: np.ndarray,
        degree_of: Optional[Callable[[int], int]] = None,
    ) -> None:
        self._ids = user_ids
        self._names = names
        self._genders = gender_codes
        self._ages = ages
        self._degree_of = degree_of
        self._cache: Dict[int, UserProfile] = {}

    def _row(self, user_id: int) -> int:
        idx = int(np.searchsorted(self._ids, user_id))
        if idx >= self._ids.size or self._ids[idx] != user_id:
            raise KeyError(user_id)
        return idx

    def __getitem__(self, user_id: int) -> UserProfile:
        cached = self._cache.get(user_id)
        if cached is not None:
            return cached
        row = self._row(user_id)
        profile = UserProfile(
            user_id=int(self._ids[row]),
            display_name=str(self._names[row]),
            gender=GENDER_CODES[int(self._genders[row])],
            age=int(self._ages[row]),
            followers=self._degree_of(user_id) if self._degree_of else 0,
        )
        self._cache[user_id] = profile
        return profile

    def __contains__(self, user_id: object) -> bool:
        if not isinstance(user_id, (int, np.integer)):
            return False
        idx = int(np.searchsorted(self._ids, user_id))
        return idx < self._ids.size and self._ids[idx] == user_id

    def __iter__(self) -> Iterator[int]:
        return iter(self._ids.tolist())

    def __len__(self) -> int:
        return int(self._ids.size)

    def items(self):
        for user_id in self:
            yield user_id, self[user_id]

    def values(self):
        for user_id in self:
            yield self[user_id]


def profile_columns(profiles) -> Dict[str, np.ndarray]:
    """Decompose an id->profile mapping into flat columns (ascending id).

    The inverse of :class:`ColumnProfiles`: the sharded on-disk layout
    stores these four arrays and reconstructs the mapping lazily.
    """
    ids = np.array(sorted(profiles), dtype=np.int64)
    gender_index = {g: i for i, g in enumerate(GENDER_CODES)}
    names = np.array([profiles[i].display_name for i in ids.tolist()])
    genders = np.array(
        [gender_index[profiles[i].gender] for i in ids.tolist()], dtype=np.int8
    )
    ages = np.array([profiles[i].age for i in ids.tolist()], dtype=np.int16)
    return {
        "prof_ids": ids,
        "prof_names": names,
        "prof_gender": genders,
        "prof_age": ages,
    }


def generate_profile(user_id: int, seed: RandomLike = None) -> UserProfile:
    """Random plausible profile for *user_id* (followers filled in later)."""
    rng = ensure_rng(seed)
    style = rng.random()
    if style < 0.4:
        name = rng.choice(_FIRST)
    elif style < 0.8:
        name = f"{rng.choice(_FIRST)} {rng.choice(_LAST)}"
    else:
        name = f"{rng.choice(_FIRST)}_{rng.choice(_LAST)}{rng.randrange(100)}"
    gender = rng.choices(
        (Gender.MALE, Gender.FEMALE, Gender.UNDISCLOSED),
        weights=(0.46, 0.44, 0.10),
    )[0]
    age = int(min(80, max(13, rng.gauss(29, 11))))
    return UserProfile(user_id=user_id, display_name=name, gender=gender, age=age)


def generate_profiles(num_users: int, seed: RandomLike = None) -> List[UserProfile]:
    """Profiles for users ``0..num_users-1`` with batched attribute draws.

    Same marginal distributions as :func:`generate_profile` (name styles,
    gender weights, truncated-gaussian age) but every random column comes
    from one numpy batch, so building 10^5 profiles costs a handful of
    vector draws instead of five python-rng calls per user.  The draw
    sequence differs from the scalar path; the columnar data planes use
    this, the ``"baseline"`` plane keeps the historical per-user draws.
    """
    rng = ensure_rng(seed)
    nrng = np.random.default_rng(rng.getrandbits(128))
    style = nrng.random(num_users)
    first = nrng.integers(0, len(_FIRST), size=num_users)
    last = nrng.integers(0, len(_LAST), size=num_users)
    suffix = nrng.integers(0, 100, size=num_users)
    gender_draw = nrng.random(num_users)
    ages = np.clip(nrng.normal(29.0, 11.0, size=num_users), 13, 80).astype(np.int64)

    profiles: List[UserProfile] = []
    for user_id in range(num_users):
        s = style[user_id]
        if s < 0.4:
            name = _FIRST[first[user_id]]
        elif s < 0.8:
            name = f"{_FIRST[first[user_id]]} {_LAST[last[user_id]]}"
        else:
            name = f"{_FIRST[first[user_id]]}_{_LAST[last[user_id]]}{suffix[user_id]}"
        g = gender_draw[user_id]
        if g < 0.46:
            gender = Gender.MALE
        elif g < 0.90:
            gender = Gender.FEMALE
        else:
            gender = Gender.UNDISCLOSED
        profiles.append(
            UserProfile(
                user_id=user_id, display_name=name, gender=gender, age=int(ages[user_id])
            )
        )
    return profiles
