"""Simulated wall clock.

All platform timestamps are seconds since the simulation epoch (we treat
epoch 0 as 2013-01-01T00:00:00, matching the paper's ground-truth window of
Jan 1 – Oct 31, 2013).  The clock only moves when something advances it —
rate limiters "sleep" by advancing it — so experiments are deterministic
and run at CPU speed regardless of the simulated rate limits.
"""

from __future__ import annotations

from repro.errors import PlatformError

SECOND = 1.0
MINUTE = 60.0
HOUR = 3600.0
DAY = 24 * HOUR
WEEK = 7 * DAY
MONTH = 30 * DAY


class SimulatedClock:
    """A monotonically advancing simulated clock."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        """Current simulated time in seconds since epoch."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move the clock forward by *seconds* (must be non-negative)."""
        if seconds < 0:
            raise PlatformError(f"cannot advance clock by negative time: {seconds}")
        self._now += seconds
        return self._now

    def sleep_until(self, timestamp: float) -> float:
        """Advance to *timestamp* if it is in the future; no-op otherwise."""
        if timestamp > self._now:
            self._now = timestamp
        return self._now


def format_timestamp(timestamp: float) -> str:
    """Human-readable ``day HH:MM`` rendering of a simulated timestamp."""
    day, rem = divmod(timestamp, DAY)
    hour, rem = divmod(rem, HOUR)
    minute = rem // MINUTE
    return f"day {int(day):3d} {int(hour):02d}:{int(minute):02d}"
