"""Out-of-core build plumbing for the ``"mmap"`` data plane.

The frozen data plane (:mod:`repro.platform.frozen`) serves estimations
from flat struct-of-arrays columns.  Nothing about *serving* requires
those columns to be RAM arrays — every read path is ``searchsorted``
slicing over sorted columns — but the *build* historically was all-in-
memory: column chunks buffered in RAM, one giant ``np.lexsort`` at
freeze.  At 10M post rows that is ~0.5 GB of columns plus comparable
sort workspace, which is exactly the scaling wall the ROADMAP's 10M-user
item names.

This module provides the streaming alternative:

* :class:`ColumnSpool` — an append-only directory of raw column files.
  A spooled :class:`~repro.platform.store.MicroblogStore` writes post
  batches straight through to disk (buffered ``write()``, so pages land
  in the page cache, not the process RSS) instead of buffering them.
* :func:`external_timeline_sort` — replaces the freeze-time
  ``np.lexsort((post_time, rows))`` with three bounded-memory passes
  (chunked bincount, stable counting-sort scatter, per-user-bucket time
  sort).  The resulting permutation is **bit-identical** to the in-RAM
  lexsort: grouping by user stably and then sorting each user's rows by
  time stably reproduces exactly the (user, time, insertion-order) key.
* :func:`freeze_spooled` — compiles a spooled store to a
  :class:`~repro.platform.frozen.FrozenStore` whose columns and indexes
  are ``np.memmap`` views over the spool directory, writing the
  ``store.json`` manifest that makes the directory a self-contained
  sharded layout (:mod:`repro.platform.serialization` adds the
  platform-level header on top).

Peak RSS of a spooled build is bounded by ``chunk_rows`` plus the
scatter/gather working set, independent of the total row count; the
resulting platform is bit-identical to the in-memory plane's because
every RNG stream is consumed in the same element order (chunked draws
from one ``np.random.Generator`` equal the one-shot draw elementwise).
"""

from __future__ import annotations

import ctypes
import json
import mmap
import os
import resource
import sys
import tempfile
import time
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import PlatformError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.platform.store import MicroblogStore

DEFAULT_CHUNK_ROWS = 262_144
"""Default streaming chunk (rows).  At six int64/float64 columns this is
~12 MB of live arrays per chunk — small enough that build RSS stays flat,
large enough that numpy batch overhead is negligible."""

SORT_CHUNK_ROWS = 65_536
"""Working-chunk cap for :func:`external_timeline_sort` — the sort passes
hold several same-sized temporaries at once, so they run on a smaller
chunk than the streaming writers regardless of ``build_chunk_rows``."""

STORE_MANIFEST = "store.json"
"""Manifest file name marking a directory as a sharded store layout."""

POST_COLUMNS: Tuple[Tuple[str, np.dtype], ...] = (
    ("post_user", np.dtype(np.int64)),
    ("post_time", np.dtype(np.float64)),
    ("post_id", np.dtype(np.int64)),
    ("post_length", np.dtype(np.int64)),
    ("post_likes", np.dtype(np.int64)),
    ("post_keyword", np.dtype(np.int64)),
)
POST_COLUMN_DTYPES: Dict[str, np.dtype] = dict(POST_COLUMNS)


# ----------------------------------------------------------------------
# process memory accounting
# ----------------------------------------------------------------------
def peak_rss_bytes() -> int:
    """High-water resident set size of this process, in bytes.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; normalise to
    bytes so the scale bench's ceilings mean one thing everywhere.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform != "darwin":
        peak *= 1024
    return int(peak)


def current_rss_bytes() -> int:
    """Current resident set size, best effort (0 where unsupported)."""
    try:
        with open("/proc/self/statm", "rb") as handle:
            return int(handle.read().split()[1]) * os.sysconf("SC_PAGE_SIZE")
    except (OSError, ValueError, IndexError):
        return 0


def _madvise_dontneed(mapping: mmap.mmap) -> None:
    """Drop a mapping's resident pages (best effort, linux/macOS only)."""
    try:
        mapping.madvise(mmap.MADV_DONTNEED)
    except (AttributeError, ValueError, OSError):  # pragma: no cover
        pass


def _madvise_random(mapping: mmap.mmap) -> None:
    """Disable fault-around for a mapping (best effort).

    A faulting write to a shared file mapping makes the kernel pre-map a
    neighbourhood of pages around the fault, not just the one touched.
    For a scatter whose destinations span the whole file — the cascade
    tail of a 10M-row timeline sort hits every user's cursor in one
    chunk — that amplification alone can fault in the entire file.
    ``MADV_RANDOM`` tells the kernel to map only the faulting page.
    """
    try:
        mapping.madvise(mmap.MADV_RANDOM)
    except (AttributeError, ValueError, OSError):  # pragma: no cover
        pass


_LIBC = None
_LIBC_PROBED = False

MADV_WILLNEED = getattr(mmap, "MADV_WILLNEED", 3)


def _libc():
    """The C library handle for raw ``madvise`` calls, or None.

    Python's ``mmap.madvise`` only works on mmap *objects*; the serving
    columns are ``np.memmap`` views whose underlying mapping numpy owns,
    so prefetch advice has to go through ``libc.madvise`` on the raw
    address range.  Purely best-effort: any platform where this probe
    fails simply serves without readahead hints.
    """
    global _LIBC, _LIBC_PROBED
    if not _LIBC_PROBED:
        try:
            libc = ctypes.CDLL(None, use_errno=True)
            libc.madvise.argtypes = (ctypes.c_void_p, ctypes.c_size_t, ctypes.c_int)
            libc.madvise.restype = ctypes.c_int
            _LIBC = libc
        except (OSError, AttributeError):  # pragma: no cover - exotic libc
            _LIBC = None
        _LIBC_PROBED = True
    return _LIBC


def madvise_willneed(array: np.ndarray, start_byte: int, stop_byte: int) -> bool:
    """``madvise(WILLNEED)`` a byte range of *array*'s backing mapping.

    The range is widened to page boundaries (madvise requires a
    page-aligned start).  Returns True when the advice call was issued,
    False on any failure — advice is never load-bearing.
    """
    libc = _libc()
    if libc is None or stop_byte <= start_byte:
        return False
    try:
        page = mmap.PAGESIZE
        base = array.ctypes.data + start_byte
        aligned = base - (base % page)
        length = (base + (stop_byte - start_byte)) - aligned
        length = ((length + page - 1) // page) * page
        return libc.madvise(aligned, length, MADV_WILLNEED) == 0
    except Exception:  # pragma: no cover - defensive: advice only
        return False


def advise_value_pages(array: np.ndarray, rows: np.ndarray, max_runs: int = 512) -> int:
    """Advise the backing pages of ``array[rows]`` readable soon.

    Coalesces the rows' pages into contiguous runs (one ``madvise`` per
    run, capped at *max_runs* — spill rows past the cap simply fault on
    demand) and returns the number of pages advised.  The batched advice
    turns the kernel's random-access classification faults into one
    readahead burst instead of a serial 4 KiB fault per neighbor.
    """
    if rows.size == 0 or _libc() is None:
        return 0
    page = mmap.PAGESIZE
    itemsize = array.itemsize
    pages = np.unique(rows.astype(np.int64, copy=False) * itemsize // page)
    if pages.size == 0:
        return 0
    breaks = np.flatnonzero(np.diff(pages) > 1) + 1
    starts = np.concatenate(([0], breaks))
    stops = np.concatenate((breaks, [pages.size]))
    advised = 0
    for s, e in zip(starts[:max_runs].tolist(), stops[:max_runs].tolist()):
        first = int(pages[s])
        last = int(pages[e - 1])
        if madvise_willneed(array, first * page, (last + 1) * page):
            advised += last - first + 1
    return advised


# ----------------------------------------------------------------------
# build progress
# ----------------------------------------------------------------------
class BuildProgress:
    """Chunked build progress: obs metrics plus optional stderr echo.

    Emits ``build.rows{stage=...}`` counters and a ``build.rss_bytes``
    gauge into the supplied metrics registry (the same registry the
    estimate-time observability uses), and — when ``echo`` — prints a
    throttled one-line status per stage so ``python -m repro simulate
    --progress`` gives a signal at large ``--users``.
    """

    def __init__(self, metrics=None, echo: bool = False, echo_seconds: float = 1.0) -> None:
        self.metrics = metrics
        self.echo = echo
        self._echo_seconds = echo_seconds
        self._last_echo = 0.0
        self._rows: Dict[str, int] = {}

    def add_rows(self, stage: str, count: int) -> None:
        if count <= 0:
            return
        self._rows[stage] = self._rows.get(stage, 0) + int(count)
        if self.metrics is not None:
            self.metrics.counter("build.rows", stage=stage).inc(int(count))
            self.metrics.gauge("build.rss_bytes").set(float(current_rss_bytes()))
        self._maybe_echo(stage)

    def note(self, stage: str) -> None:
        """Mark a stage transition that has no row count (sorts, manifests)."""
        if self.metrics is not None:
            self.metrics.gauge("build.rss_bytes").set(float(current_rss_bytes()))
        if self.echo:
            rss = current_rss_bytes() / 1e6
            print(f"[build] {stage} (rss {rss:,.0f} MB)", file=sys.stderr)

    def rows(self, stage: str) -> int:
        return self._rows.get(stage, 0)

    def _maybe_echo(self, stage: str) -> None:
        if not self.echo:
            return
        now = time.monotonic()
        if now - self._last_echo < self._echo_seconds:
            return
        self._last_echo = now
        rss = current_rss_bytes() / 1e6
        print(
            f"[build] {stage}: {self._rows[stage]:,} rows (rss {rss:,.0f} MB)",
            file=sys.stderr,
        )


# ----------------------------------------------------------------------
# spool: append-only column files
# ----------------------------------------------------------------------
class _ColumnWriter:
    """Buffered appender for one raw column file."""

    __slots__ = ("path", "dtype", "count", "_handle")

    def __init__(self, path: str, dtype: np.dtype) -> None:
        self.path = path
        self.dtype = dtype
        self.count = 0
        self._handle = open(path, "wb", buffering=1 << 20)

    def append(self, values: np.ndarray) -> None:
        array = np.ascontiguousarray(values, dtype=self.dtype)
        self._handle.write(array.tobytes())
        self.count += array.size

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class ColumnSpool:
    """Append-only on-disk post columns for a streaming platform build.

    One raw binary file per post column, written through buffered file
    handles so streamed pages never count against the process RSS.  The
    column files are append-independent: the background streamer writes
    all of one column's chunks before starting the next (matching the
    one-shot RNG draw order), while cascade emission appends row-aligned
    slices across all columns.  :meth:`finish` closes the writers and
    checks every column reached the same row count.

    Keyword codes are assigned in first-appearance order — background
    ``None`` first (code -1, not named), then cascade keywords in config
    order — exactly the order :meth:`FrozenStore.from_store` assigns, so
    a spooled build's keyword column is bit-identical to the in-memory
    plane's.
    """

    def __init__(
        self,
        directory: Optional[str] = None,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
        progress: Optional[BuildProgress] = None,
    ) -> None:
        if chunk_rows < 1:
            raise PlatformError("chunk_rows must be >= 1")
        if directory is None:
            directory = tempfile.mkdtemp(prefix="repro-spool-")
            self.owns_directory = True
        else:
            os.makedirs(directory, exist_ok=True)
            self.owns_directory = False
        self.directory = directory
        self.chunk_rows = int(chunk_rows)
        self.progress = progress
        self.keyword_names: List[str] = []
        self._keyword_index: Dict[str, int] = {}
        self._writers: Dict[str, _ColumnWriter] = {
            name: _ColumnWriter(self.column_path(name), dtype)
            for name, dtype in POST_COLUMNS
        }
        self._finished = False

    # ------------------------------------------------------------------
    def column_path(self, name: str) -> str:
        return os.path.join(self.directory, f"{name}.bin")

    @property
    def rows(self) -> int:
        return self._writers["post_user"].count

    def kw_code(self, keyword: Optional[str]) -> int:
        """First-appearance keyword code (``None`` -> -1), as at freeze."""
        if keyword is None:
            return -1
        if keyword not in self._keyword_index:
            self._keyword_index[keyword] = len(self.keyword_names)
            self.keyword_names.append(keyword)
        return self._keyword_index[keyword]

    def append_column(self, name: str, values: np.ndarray) -> None:
        if self._finished:
            raise PlatformError("spool already finished")
        self._writers[name].append(values)

    def append_posts(
        self,
        user_ids: np.ndarray,
        timestamps: np.ndarray,
        post_ids: np.ndarray,
        lengths: np.ndarray,
        likes: np.ndarray,
        keyword: Optional[str],
    ) -> None:
        """Row-aligned append across all six columns, in bounded slices."""
        code = self.kw_code(keyword)
        total = int(timestamps.size)
        step = self.chunk_rows
        for offset in range(0, total, step):
            stop = min(offset + step, total)
            self.append_column("post_user", user_ids[offset:stop])
            self.append_column("post_time", timestamps[offset:stop])
            self.append_column("post_id", post_ids[offset:stop])
            self.append_column("post_length", lengths[offset:stop])
            self.append_column("post_likes", likes[offset:stop])
            self.append_column("post_keyword", np.full(stop - offset, code, dtype=np.int64))

    def finish(self) -> int:
        """Close the writers; returns the (verified) common row count."""
        if not self._finished:
            counts = {name: writer.count for name, writer in self._writers.items()}
            if len(set(counts.values())) > 1:
                raise PlatformError(f"spool columns have unequal lengths: {counts}")
            for writer in self._writers.values():
                writer.close()
            self._finished = True
        return self._writers["post_user"].count

    def iter_column(self, name: str, chunk_rows: Optional[int] = None):
        """Yield ``(row_offset, chunk_array)`` over one finished column.

        Sequential buffered reads into fresh heap arrays — the file's
        pages stay in the kernel page cache, not this process's RSS.
        """
        return iter_column_file(
            self.column_path(name),
            POST_COLUMN_DTYPES[name],
            chunk_rows or self.chunk_rows,
        )


def iter_column_file(path: str, dtype: np.dtype, chunk_rows: int):
    """Yield ``(row_offset, array)`` chunks of a raw column file."""
    itemsize = np.dtype(dtype).itemsize
    offset = 0
    with open(path, "rb") as handle:
        while True:
            raw = handle.read(chunk_rows * itemsize)
            if not raw:
                return
            chunk = np.frombuffer(raw, dtype=dtype)
            yield offset, chunk
            offset += chunk.size


def write_column_file(path: str, values: np.ndarray, dtype: np.dtype) -> None:
    """Write *values* as one raw column file (buffered, RSS-neutral)."""
    np.ascontiguousarray(values, dtype=dtype).tofile(path)


def map_column_file(path: str, dtype: np.dtype, mode: str = "r") -> np.ndarray:
    """``np.memmap`` view of a raw column file (empty array if 0 bytes)."""
    if os.path.getsize(path) == 0:
        return np.empty(0, dtype=dtype)
    return np.memmap(path, dtype=dtype, mode=mode)


# ----------------------------------------------------------------------
# external stable timeline sort
# ----------------------------------------------------------------------
def external_timeline_sort(
    post_user_path: str,
    post_time_path: str,
    out_path: str,
    sorted_user_ids: np.ndarray,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
    progress: Optional[BuildProgress] = None,
) -> np.ndarray:
    """Compute the timeline permutation out of core; returns ``tl_indptr``.

    Bit-identical to ``np.lexsort((post_time, rows))`` — the permutation
    that groups posts per user (users in sorted-id order) with each
    user's run time-sorted and insertion order breaking timestamp ties —
    but never holds more than ~4 chunk-sized arrays in RAM:

    1. chunked ``bincount`` over ``post_user`` -> per-user counts ->
       ``tl_indptr``;
    2. stable counting-sort scatter: each chunk's row indices, stably
       grouped by user, land at per-user write cursors in the output
       file (grouping is stable, so within a user the scattered rows
       stay in ascending original-row order).  Each row's *timestamp* is
       scattered to the same position in a sibling scratch file, so the
       next pass never has to gather timestamps by random access;
    3. per-user-bucket time sort: contiguous runs of users are re-sorted
       with ``np.lexsort((times, bucket))`` — stable, so timestamp ties
       keep the pass-2 (insertion) order.  The bucket's timestamps come
       from a *sequential* read of the pass-2 scratch file.

    The scattered files are written via shared mappings marked
    ``MADV_RANDOM`` (so a faulting write maps one page, not a
    fault-around neighbourhood) whose pages are flushed and dropped
    (``MADV_DONTNEED``) after every chunk, so each pass's resident set
    is bounded by one chunk's touched pages (at most ~a page per user
    per chunk), not by the file sizes — the property that keeps a
    10M-row freeze inside a fixed RSS ceiling.

    The working chunk is clamped to :data:`SORT_CHUNK_ROWS`: sort-pass
    temporaries (argsort permutations, destination vectors) exist ~6 at
    a time, so an over-generous build chunk would multiply straight into
    peak RSS while buying nothing — the passes are I/O-shaped, not
    dispatch-bound.  Chunk size never changes the result (tested).
    """
    chunk_rows = min(chunk_rows, SORT_CHUNK_ROWS)
    ids = np.asarray(sorted_user_ids)
    n_users = int(ids.size)
    contiguous = bool(n_users and ids[0] == 0 and ids[-1] == n_users - 1)

    # ---- pass 1: per-user counts --------------------------------------
    counts = np.zeros(n_users, dtype=np.int64)
    total_rows = 0
    for _, chunk in iter_column_file(post_user_path, np.int64, chunk_rows):
        rows = chunk if contiguous else np.searchsorted(ids, chunk)
        counts += np.bincount(rows, minlength=n_users)
        total_rows += chunk.size
    tl_indptr = np.zeros(n_users + 1, dtype=np.int64)
    np.cumsum(counts, out=tl_indptr[1:])
    if progress is not None:
        progress.note("freeze:timeline-indptr")

    scratch_path = out_path + ".times"
    with open(out_path, "wb") as handle:
        handle.truncate(total_rows * 8)
    with open(scratch_path, "wb") as handle:
        handle.truncate(total_rows * 8)
    if total_rows == 0:
        os.unlink(scratch_path)
        return tl_indptr

    out_file = open(out_path, "r+b")
    out_map = mmap.mmap(out_file.fileno(), 0)
    out = np.frombuffer(out_map, dtype=np.int64)
    scratch_file = open(scratch_path, "r+b")
    scratch_map = mmap.mmap(scratch_file.fileno(), 0)
    scratch = np.frombuffer(scratch_map, dtype=np.float64)
    for mapping in (out_map, scratch_map):
        _madvise_random(mapping)
    try:
        # ---- pass 2: stable counting-sort scatter ---------------------
        cursor = tl_indptr[:-1].copy()
        times_iter = iter_column_file(post_time_path, np.float64, chunk_rows)
        for base, chunk in iter_column_file(post_user_path, np.int64, chunk_rows):
            _, times_chunk = next(times_iter)
            rows = chunk if contiguous else np.searchsorted(ids, chunk)
            order = np.argsort(rows, kind="stable")
            sorted_rows = rows[order]
            starts = np.flatnonzero(np.r_[True, np.diff(sorted_rows) != 0])
            lengths = np.diff(np.r_[starts, sorted_rows.size])
            within = np.arange(sorted_rows.size) - np.repeat(starts, lengths)
            destinations = cursor[sorted_rows] + within
            out[destinations] = base + order
            scratch[destinations] = times_chunk[order]
            cursor[sorted_rows[starts]] += lengths
            for mapping in (out_map, scratch_map):
                mapping.flush()
                _madvise_dontneed(mapping)
            if progress is not None:
                progress.add_rows("freeze:timeline-scatter", chunk.size)
        del scratch
        scratch_map.close()
        scratch_file.close()

        # ---- pass 3: per-user-bucket time sort ------------------------
        with open(scratch_path, "rb") as times_sorted:
            user = 0
            while user < n_users:
                # Greedily extend the bucket batch to ~chunk_rows rows.
                upper = int(
                    np.searchsorted(tl_indptr, tl_indptr[user] + chunk_rows, side="right") - 1
                )
                upper = min(max(upper, user + 1), n_users)
                lo = int(tl_indptr[user])
                hi = int(tl_indptr[upper])
                if hi > lo:
                    gathered = np.frombuffer(
                        times_sorted.read((hi - lo) * 8), dtype=np.float64
                    )
                    segment = np.array(out[lo:hi])  # copy out of the mapping
                    sizes = np.diff(tl_indptr[user: upper + 1])
                    buckets = np.repeat(np.arange(sizes.size), sizes)
                    order = np.lexsort((gathered, buckets))
                    out[lo:hi] = segment[order]
                    out_map.flush()
                    _madvise_dontneed(out_map)
                    if progress is not None:
                        progress.add_rows("freeze:timeline-timesort", hi - lo)
                user = upper
    finally:
        del out
        out_map.close()
        out_file.close()
        if not scratch_file.closed:
            del scratch
            scratch_map.close()
            scratch_file.close()
        os.unlink(scratch_path)
    return tl_indptr


# ----------------------------------------------------------------------
# spooled freeze
# ----------------------------------------------------------------------
def freeze_spooled(store: "MicroblogStore"):
    """Compile a spooled :class:`MicroblogStore` to a mapped FrozenStore.

    The returned store serves every column and compiled index as an
    ``np.memmap`` view over the spool directory (``storage == "mmap"``,
    ``source_dir`` set), and the directory carries a ``store.json``
    manifest making it the sharded on-disk layout that
    :func:`repro.platform.serialization.save_platform` and
    :class:`repro.parallel.platform_ref.PlatformRef` reuse.
    """
    from repro.graph.csr import CSRGraph
    from repro.platform.frozen import CompiledIndexes, FrozenStore

    spool = store.spool
    if spool is None:
        raise PlatformError("freeze_spooled requires a spooled store")
    progress = spool.progress
    total_rows = spool.finish()
    directory = spool.directory
    chunk_rows = spool.chunk_rows

    graph = CSRGraph.from_graph(store.graph)
    profiles = store._profiles  # compile-time access, as FrozenStore.from_store
    sorted_user_ids = np.array(sorted(profiles), dtype=np.int64)

    # ---- timeline permutation (out-of-core stable sort) ---------------
    tl_order_path = os.path.join(directory, "tl_order.bin")
    tl_indptr = external_timeline_sort(
        spool.column_path("post_user"),
        spool.column_path("post_time"),
        tl_order_path,
        sorted_user_ids,
        chunk_rows=chunk_rows,
        progress=progress,
    )
    write_column_file(os.path.join(directory, "tl_indptr.bin"), tl_indptr, np.int64)
    write_column_file(
        os.path.join(directory, "sorted_user_ids.bin"), sorted_user_ids, np.int64
    )

    # ---- per-keyword logs (tagged subset is small: cascades only) -----
    tagged_rows: List[np.ndarray] = []
    tagged_codes: List[np.ndarray] = []
    for base, chunk in spool.iter_column("post_keyword"):
        hits = np.flatnonzero(chunk >= 0)
        if hits.size:
            tagged_rows.append(base + hits)
            tagged_codes.append(chunk[hits])
    rows_tagged = np.concatenate(tagged_rows) if tagged_rows else np.empty(0, np.int64)
    codes_tagged = np.concatenate(tagged_codes) if tagged_codes else np.empty(0, np.int64)

    post_time_mm = map_column_file(spool.column_path("post_time"), np.float64)
    post_user_mm = map_column_file(spool.column_path("post_user"), np.int64)
    post_id_mm = map_column_file(spool.column_path("post_id"), np.int64)

    kw_manifest: Dict[str, Dict[str, str]] = {}
    for code, name in enumerate(spool.keyword_names):
        rows_kw = rows_tagged[codes_tagged == code]
        t = np.asarray(post_time_mm[rows_kw])
        u = np.asarray(post_user_mm[rows_kw])
        p = np.asarray(post_id_mm[rows_kw])
        order = np.lexsort((p, u, t))
        t, u, p = t[order], u[order], p[order]
        uniq, first_idx = np.unique(u, return_index=True)
        stems = {
            "times": f"kw{code}_times.bin",
            "users": f"kw{code}_users.bin",
            "pids": f"kw{code}_pids.bin",
            "first_users": f"kw{code}_first_users.bin",
            "first_times": f"kw{code}_first_times.bin",
        }
        write_column_file(os.path.join(directory, stems["times"]), t, np.float64)
        write_column_file(os.path.join(directory, stems["users"]), u, np.int64)
        write_column_file(os.path.join(directory, stems["pids"]), p, np.int64)
        write_column_file(os.path.join(directory, stems["first_users"]), uniq, np.int64)
        write_column_file(
            os.path.join(directory, stems["first_times"]), t[first_idx], np.float64
        )
        kw_manifest[name] = stems
    if progress is not None:
        progress.note("freeze:keyword-indexes")

    # ---- graph + profiles ---------------------------------------------
    from repro.platform.users import profile_columns

    write_column_file(os.path.join(directory, "graph_indptr.bin"), graph.indptr, np.int64)
    write_column_file(os.path.join(directory, "graph_indices.bin"), graph.indices, np.int64)
    write_column_file(os.path.join(directory, "graph_ids.bin"), graph._ids, np.int64)
    columns = profile_columns(profiles)
    write_column_file(os.path.join(directory, "prof_ids.bin"), columns["prof_ids"], np.int64)
    write_column_file(
        os.path.join(directory, "prof_gender.bin"), columns["prof_gender"], np.int8
    )
    write_column_file(os.path.join(directory, "prof_age.bin"), columns["prof_age"], np.int16)
    np.save(os.path.join(directory, "prof_names.npy"), columns["prof_names"])

    manifest = {
        "format_version": 1,
        "num_rows": total_rows,
        "next_post_id": store._next_post_id,
        "keyword_names": list(spool.keyword_names),
        "keyword_files": kw_manifest,
        "multi_keyword_posts": {},
        "columns": {name: f"{name}.bin" for name, _ in POST_COLUMNS},
    }
    with open(os.path.join(directory, STORE_MANIFEST), "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=1)
    if progress is not None:
        progress.note("freeze:manifest")

    compiled = CompiledIndexes(
        sorted_user_ids=sorted_user_ids,
        tl_order=map_column_file(tl_order_path, np.int64),
        tl_indptr=tl_indptr,
        kw_times={
            name: map_column_file(os.path.join(directory, stems["times"]), np.float64)
            for name, stems in kw_manifest.items()
        },
        kw_users={
            name: map_column_file(os.path.join(directory, stems["users"]), np.int64)
            for name, stems in kw_manifest.items()
        },
        kw_pids={
            name: map_column_file(os.path.join(directory, stems["pids"]), np.int64)
            for name, stems in kw_manifest.items()
        },
        kw_first_users={
            name: map_column_file(os.path.join(directory, stems["first_users"]), np.int64)
            for name, stems in kw_manifest.items()
        },
        kw_first_times={
            name: map_column_file(os.path.join(directory, stems["first_times"]), np.float64)
            for name, stems in kw_manifest.items()
        },
    )
    return FrozenStore(
        graph=graph,
        profiles=profiles,
        user_order=list(profiles),
        post_user=post_user_mm,
        post_time=post_time_mm,
        post_id=post_id_mm,
        post_length=map_column_file(spool.column_path("post_length"), np.int64),
        post_likes=map_column_file(spool.column_path("post_likes"), np.int64),
        post_keyword=map_column_file(spool.column_path("post_keyword"), np.int64),
        keyword_names=list(spool.keyword_names),
        multi_keywords={},
        next_post_id=store._next_post_id,
        precompiled=compiled,
        source_dir=directory,
        storage="mmap",
    )


__all__ = [
    "BuildProgress",
    "ColumnSpool",
    "DEFAULT_CHUNK_ROWS",
    "POST_COLUMNS",
    "POST_COLUMN_DTYPES",
    "STORE_MANIFEST",
    "current_rss_bytes",
    "external_timeline_sort",
    "freeze_spooled",
    "iter_column_file",
    "map_column_file",
    "peak_rss_bytes",
    "write_column_file",
]
