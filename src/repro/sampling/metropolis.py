"""Metropolis–Hastings random walk targeting the uniform distribution.

The MHRW [12 in the paper] corrects the SRW's degree bias on-line: propose
a uniform neighbor ``v`` of ``u`` and accept with probability
``min(1, d(u)/d(v))``, else stay.  Its stationary distribution is uniform
over nodes, so samples need no reweighting — at the price of self-loops
at high-degree nodes that slow mixing (the paper cites [13]: SRW is
typically 1.5–8x faster, which our ablation bench verifies).
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro._rng import RandomLike, ensure_rng
from repro.errors import EstimationError
from repro.sampling.random_walk import NeighborFn, WalkSamples


class MetropolisHastingsWalk:
    """MHRW with the same interface as :class:`SimpleRandomWalk`."""

    def __init__(self, neighbor_fn: NeighborFn, start: int, seed: RandomLike = None) -> None:
        self.neighbor_fn = neighbor_fn
        self.start = start
        self.current = start
        self.rng = ensure_rng(seed)
        self.steps = 0
        self.rejections = 0
        self.dead_end_restarts = 0

    def step(self) -> int:
        neighbors = list(self.neighbor_fn(self.current))
        if not neighbors:
            self.dead_end_restarts += 1
            self.current = self.start
            self.steps += 1
            return self.current
        proposal = self.rng.choice(neighbors)
        proposal_neighbors = self.neighbor_fn(proposal)
        degree_u = len(neighbors)
        degree_v = max(len(proposal_neighbors), 1)
        if self.rng.random() < degree_u / degree_v:
            self.current = proposal
        else:
            self.rejections += 1
        self.steps += 1
        return self.current

    def run(self, steps: int) -> Iterator[int]:
        for _ in range(steps):
            yield self.step()


def collect_uniform_samples(
    neighbor_fn: NeighborFn,
    start: int,
    num_samples: int,
    burn_in: int = 0,
    thinning: int = 1,
    seed: RandomLike = None,
    max_steps: Optional[int] = None,
) -> WalkSamples:
    """MHRW analogue of :func:`repro.sampling.random_walk.collect_samples`.

    Returned degrees are the true neighbor counts (useful for Katzir-style
    estimators even though the sampling distribution is uniform).
    """
    if num_samples < 1:
        raise EstimationError("num_samples must be >= 1")
    if burn_in < 0 or thinning < 1:
        raise EstimationError("burn_in must be >= 0 and thinning >= 1")
    walk = MetropolisHastingsWalk(neighbor_fn, start, seed=seed)
    samples = WalkSamples()
    needed_steps = burn_in + num_samples * thinning
    limit = needed_steps if max_steps is None else min(needed_steps, max_steps)
    for step_index in range(limit):
        node = walk.step()
        if step_index >= burn_in and (step_index - burn_in) % thinning == thinning - 1:
            samples.append(node, len(walk.neighbor_fn(node)))
    samples.steps_taken = walk.steps
    return samples
