"""Convergence diagnostics for random-walk chains.

The paper measures burn-in with the Geweke diagnostic [11]: compare the
mean of the first 10% of the chain with the mean of the last 50%; the
z-score should be near zero once the chain has forgotten its start
("Geweke threshold Z <= 0.1", §4.1).  :func:`detect_burn_in` finds the
shortest prefix whose removal brings |Z| under the threshold — the
operational burn-in length reported in Figure 4's discussion (about 700
steps for the full Twitter graph vs 610 for the term-induced subgraph).
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.errors import EstimationError


def geweke_z(
    series: Sequence[float],
    first_fraction: float = 0.1,
    last_fraction: float = 0.5,
    batches: int = 20,
) -> float:
    """Geweke z-score between early and late segments of *series*.

    The variance of each segment mean is estimated by **batch means**
    (segment split into *batches* consecutive blocks, variance of block
    means): random-walk chains are strongly autocorrelated, and the naive
    iid variance understates the spread by the autocorrelation time,
    inflating Z so far that a perfectly mixed chain never "converges".

    Returns 0.0 when both segments are constant and equal (a fully mixed
    degenerate chain); raises when the series is too short to split.
    """
    if not 0 < first_fraction < 1 or not 0 < last_fraction < 1:
        raise EstimationError("fractions must be in (0, 1)")
    if first_fraction + last_fraction > 1:
        raise EstimationError("segments must not overlap")
    if batches < 2:
        raise EstimationError("need at least two batches")
    n = len(series)
    first_len = max(int(n * first_fraction), 1)
    last_len = max(int(n * last_fraction), 1)
    if first_len + last_len > n:
        raise EstimationError(f"series of length {n} too short for Geweke segments")
    first = series[:first_len]
    last = series[n - last_len:]
    mean_first = sum(first) / len(first)
    mean_last = sum(last) / len(last)
    spread = _mean_variance_batch(first, batches) + _mean_variance_batch(last, batches)
    if spread == 0:
        if mean_first == mean_last:
            return 0.0
        return math.inf if mean_first > mean_last else -math.inf
    return (mean_first - mean_last) / math.sqrt(spread)


def _mean_variance_batch(values: Sequence[float], batches: int) -> float:
    """Batch-means estimate of Var(mean(values)) for a correlated chain."""
    n = len(values)
    usable_batches = min(batches, n)
    if usable_batches < 2:
        return 0.0
    size = n // usable_batches
    means = []
    for index in range(usable_batches):
        block = values[index * size:(index + 1) * size]
        means.append(sum(block) / len(block))
    grand = sum(means) / len(means)
    var_of_batch_means = sum((m - grand) ** 2 for m in means) / (len(means) - 1)
    return var_of_batch_means / len(means)


def detect_burn_in(
    series: Sequence[float],
    threshold: float = 0.1,
    step: int = 10,
    max_discard_fraction: float = 0.8,
) -> Optional[int]:
    """Shortest prefix length whose removal yields |Geweke Z| <= threshold.

    Scans discard lengths 0, step, 2*step, ... up to
    ``max_discard_fraction`` of the chain.  Returns None when no prefix
    within that range converges — the caller should walk longer.
    """
    if threshold <= 0:
        raise EstimationError("threshold must be positive")
    if step < 1:
        raise EstimationError("step must be >= 1")
    n = len(series)
    limit = int(n * max_discard_fraction)
    discard = 0
    while discard <= limit:
        tail = series[discard:]
        try:
            z = geweke_z(tail)
        except EstimationError:
            return None
        if abs(z) <= threshold:
            return discard
        discard += step
    return None


def autocorrelation(series: Sequence[float], lag: int) -> float:
    """Lag-*lag* autocorrelation (diagnostic companion to Geweke)."""
    n = len(series)
    if lag < 0 or lag >= n:
        raise EstimationError(f"lag must be in [0, {n - 1}]")
    mean = sum(series) / n
    denom = sum((v - mean) ** 2 for v in series)
    if denom == 0:
        return 1.0 if lag == 0 else 0.0
    num = sum((series[i] - mean) * (series[i + lag] - mean) for i in range(n - lag))
    return num / denom
