"""Simple random walk over a neighbor oracle.

The simple random walk (SRW) of Lovász [20 in the paper]: from node ``u``
transit to a neighbor chosen uniformly at random.  Its stationary
distribution weights each node proportionally to its degree, so estimators
downstream reweight samples by ``1/degree``.

The walk takes its neighborhood structure from a callable, not a graph
object: over the API-backed oracles every ``neighbors(u)`` costs real
query budget, which is exactly the accounting the paper's experiments
measure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Sequence

from repro._rng import RandomLike, ensure_rng
from repro.errors import EstimationError

NeighborFn = Callable[[int], Sequence[int]]


@dataclass
class WalkSamples:
    """Samples drawn by a walk, with the degrees needed for reweighting."""

    nodes: List[int] = field(default_factory=list)
    degrees: List[int] = field(default_factory=list)
    steps_taken: int = 0

    def append(self, node: int, degree: int) -> None:
        self.nodes.append(node)
        self.degrees.append(degree)

    def __len__(self) -> int:
        return len(self.nodes)


class SimpleRandomWalk:
    """Iterator-style SRW with explicit step control.

    A node with no neighbors is a dead end; the walk restarts from its
    start node (with replacement restarts the walk remains well-defined on
    almost-connected subgraphs, and dead ends are rare on the graphs we
    sample).
    """

    def __init__(self, neighbor_fn: NeighborFn, start: int, seed: RandomLike = None) -> None:
        self.neighbor_fn = neighbor_fn
        self.start = start
        self.current = start
        self.rng = ensure_rng(seed)
        self.steps = 0
        self.dead_end_restarts = 0

    def step(self) -> int:
        """Advance one transition and return the new current node."""
        neighbors = self.neighbor_fn(self.current)
        if not neighbors:
            self.dead_end_restarts += 1
            self.current = self.start
        else:
            self.current = self.rng.choice(list(neighbors))
        self.steps += 1
        return self.current

    def run(self, steps: int) -> Iterator[int]:
        """Yield the node after each of *steps* transitions."""
        for _ in range(steps):
            yield self.step()


def collect_samples(
    neighbor_fn: NeighborFn,
    start: int,
    num_samples: int,
    burn_in: int = 0,
    thinning: int = 1,
    seed: RandomLike = None,
    max_steps: Optional[int] = None,
) -> WalkSamples:
    """Run an SRW and keep every ``thinning``-th node after ``burn_in``.

    ``max_steps`` bounds total transitions (API budgets make unbounded
    walks unacceptable); hitting it returns the samples gathered so far
    rather than raising, mirroring a budget-constrained client.
    """
    if num_samples < 1:
        raise EstimationError("num_samples must be >= 1")
    if burn_in < 0 or thinning < 1:
        raise EstimationError("burn_in must be >= 0 and thinning >= 1")
    walk = SimpleRandomWalk(neighbor_fn, start, seed=seed)
    samples = WalkSamples()
    needed_steps = burn_in + num_samples * thinning
    limit = needed_steps if max_steps is None else min(needed_steps, max_steps)
    for step_index in range(limit):
        node = walk.step()
        if step_index >= burn_in and (step_index - burn_in) % thinning == thinning - 1:
            samples.append(node, len(walk.neighbor_fn(node)))
    samples.steps_taken = walk.steps
    return samples
