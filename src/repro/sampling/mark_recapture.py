"""Mark-and-recapture population-size estimation.

The paper's COUNT baseline M&R is the collision-based estimator of Katzir,
Liberty & Somekh (WWW'11, [15]) adapted to the keyword subgraph: draw
random-walk samples (stationary probability proportional to degree), count
pairwise collisions, and estimate

    n_hat = (sum d_i) * (sum 1/d_i) / (2 C) * (r - 1) / r

where ``C`` is the number of colliding ordered-unordered sample pairs.
Derivation:  E[sum d] = r * sum_v d_v^2 / 2|E|,  E[sum 1/d] = r n / 2|E|,
E[2C] = r (r-1) sum_v d_v^2 / 4|E|^2 — the |E| and degree-moment terms
cancel, leaving n * r/(r-1); the trailing factor removes that bias.

The paper's complaint (§3.2) is the cost: Omega(sqrt(n)) samples are
needed before the *first* collision is expected, so COUNTs over ~900k-user
populations require thousands of samples.  :func:`chapman_estimate` — the
classical two-occasion capture-recapture estimator [9] — is included for
completeness and tests.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Sequence

from repro.errors import EstimationError


@dataclass(frozen=True)
class KatzirEstimate:
    """Result of :func:`katzir_count`."""

    population: float
    collisions: int
    samples: int


def count_collisions(nodes: Sequence[int]) -> int:
    """Number of unordered sample pairs that hit the same node."""
    collisions = 0
    for _, multiplicity in Counter(nodes).items():
        collisions += multiplicity * (multiplicity - 1) // 2
    return collisions


def katzir_count(nodes: Sequence[int], degrees: Sequence[int]) -> KatzirEstimate:
    """Katzir et al. population-size estimate from SRW samples.

    Raises :class:`EstimationError` when no collision has occurred yet —
    the estimator is simply undefined there, which is the very cost
    pathology MA-TARW removes.
    """
    if len(nodes) != len(degrees):
        raise EstimationError("nodes and degrees must align")
    r = len(nodes)
    if r < 2:
        raise EstimationError("need at least two samples")
    if any(degree <= 0 for degree in degrees):
        raise EstimationError("degrees must be positive")
    collisions = count_collisions(nodes)
    if collisions == 0:
        raise EstimationError(
            f"no collisions in {r} samples; population estimate undefined"
        )
    sum_degrees = float(sum(degrees))
    sum_inverse = sum(1.0 / degree for degree in degrees)
    population = sum_degrees * sum_inverse / (2.0 * collisions) * (r - 1) / r
    return KatzirEstimate(population=population, collisions=collisions, samples=r)


def chapman_estimate(marked: int, recaptured: int, overlap: int) -> float:
    """Chapman's bias-corrected two-occasion mark-recapture estimate.

    n_hat = (M+1)(C+1)/(m+1) - 1 for M marked, C recaptured, m overlap.
    """
    if marked < 0 or recaptured < 0 or overlap < 0:
        raise EstimationError("counts must be non-negative")
    if overlap > min(marked, recaptured):
        raise EstimationError("overlap cannot exceed either sample size")
    return (marked + 1) * (recaptured + 1) / (overlap + 1) - 1
