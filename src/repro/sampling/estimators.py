"""Classical sampling estimators.

* :func:`hansen_hurwitz` — the unbiased with-replacement estimator of a
  population total from samples with known selection probabilities
  (Hansen & Hurwitz 1943, [14] in the paper).  MA-TARW's entire point is
  that the topology-aware walk *computes* its selection probability
  ``p(u)`` exactly — Eq. 6 gives the per-path product of transition
  probabilities, and Eq. 7 sums it over the (boundable) set of paths that
  can reach ``u`` — which makes this estimator applicable to SUM/COUNT
  aggregates (§5.1) where self-normalising SRW estimators cannot be.
* :func:`ratio_average` — the standard SRW mean estimator: samples arrive
  with probability proportional to degree, so AVG(f) is estimated by the
  self-normalising ratio  sum(f/d) / sum(1/d)  [20].

Both are pure functions of their sample sequences, which is what lets
the parallel walk engine merge per-shard accumulators: Hansen–Hurwitz
partials add (they share no normalisation other than the sample count),
and ratio_average pools raw ``(value, degree)`` samples across chains.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import EstimationError


def hansen_hurwitz(values: Sequence[float], probabilities: Sequence[float]) -> float:
    """Unbiased total:  (1/r) * sum_i  v_i / p_i.

    Each draw *i* selected its unit with probability ``p_i`` (with
    replacement); ``v_i`` is the measure of the selected unit.  Zero or
    negative probabilities are a caller bug and raise.
    """
    if len(values) != len(probabilities):
        raise EstimationError("values and probabilities must align")
    if not values:
        raise EstimationError("no samples")
    total = 0.0
    for value, probability in zip(values, probabilities):
        if probability <= 0:
            raise EstimationError(f"non-positive selection probability {probability}")
        total += value / probability
    return total / len(values)


def ratio_average(values: Sequence[float], degrees: Sequence[int]) -> float:
    """Degree-debiased mean:  sum(v/d) / sum(1/d)  over SRW samples."""
    if len(values) != len(degrees):
        raise EstimationError("values and degrees must align")
    if not values:
        raise EstimationError("no samples")
    numerator = 0.0
    denominator = 0.0
    for value, degree in zip(values, degrees):
        if degree <= 0:
            raise EstimationError(f"non-positive degree {degree}")
        numerator += value / degree
        denominator += 1.0 / degree
    if denominator == 0:
        raise EstimationError("degenerate weights")
    return numerator / denominator


def weighted_fraction(indicator: Sequence[float], degrees: Sequence[int]) -> float:
    """Degree-debiased fraction of samples with ``indicator != 0``.

    A special case of :func:`ratio_average` for {0,1} measures, used for
    predicate-conditioned COUNTs (e.g. Figure 13's "male users").
    """
    return ratio_average([1.0 if flag else 0.0 for flag in indicator], degrees)
