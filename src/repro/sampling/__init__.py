"""Graph sampling toolkit: walks, diagnostics and classical estimators.

This subpackage contains the prior-work machinery the paper builds on and
compares against (§4, §5, §7): simple random walks [20], the
Metropolis–Hastings random walk [12], the mark-and-recapture COUNT
estimator of Katzir et al. [15], Geweke convergence diagnostics [11], and
the Hansen–Hurwitz estimator [14].  Everything is written against a plain
``neighbors(node) -> sequence`` callable, so the same code runs over an
in-memory :class:`~repro.graph.social_graph.SocialGraph` (tests, theory
benches) or over the API-backed oracles of :mod:`repro.core.graph_builder`
(the real estimators).
"""

from repro.sampling.random_walk import SimpleRandomWalk, WalkSamples, collect_samples
from repro.sampling.metropolis import MetropolisHastingsWalk
from repro.sampling.mark_recapture import chapman_estimate, katzir_count
from repro.sampling.diagnostics import detect_burn_in, geweke_z
from repro.sampling.estimators import hansen_hurwitz, ratio_average

__all__ = [
    "SimpleRandomWalk",
    "WalkSamples",
    "collect_samples",
    "MetropolisHastingsWalk",
    "katzir_count",
    "chapman_estimate",
    "geweke_z",
    "detect_burn_in",
    "hansen_hurwitz",
    "ratio_average",
]
